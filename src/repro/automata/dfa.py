"""Deterministic automata: subset construction, minimisation, equivalence.

The HyperScan proxy engine compiles guide automata to DFAs (HyperScan's
fast paths are DFA-based), the property-test suite uses NFA ≡ DFA
equivalence as an oracle for the NFA machinery itself, and the
equivalence prover (:mod:`repro.check.prove`) decides language equality
between a compiled DFA and its budget-semantics reference.

Determinisation operates on the *search* semantics of the source NFA:
all-input start states are re-injected on every step, so the resulting
DFA scans unanchored input with one transition per symbol and no
restart logic — precisely the structure that makes DFA scanning fast on
a CPU.

The DFAs here are Moore machines: a state's accept-label set is its
output, emitted every time the state is *entered by consuming* a
symbol. Minimisation, isomorphism, and the distinguishing-word search
all compare that per-state output, so two automata are "equal" exactly
when they report the same labels at the same positions on every input.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Iterator, Optional

import numpy as np

from .. import alphabet
from ..errors import AutomatonError, StateBlowupError
from .nfa import Nfa


@dataclass
class Dfa:
    """A complete DFA over the genome code alphabet.

    ``transitions`` has shape ``(num_states, NUM_CODES)``; entry
    ``[s, c]`` is the successor of state ``s`` on symbol code ``c``.
    ``accepts`` maps a state to the tuple of labels it reports.
    """

    transitions: np.ndarray
    start_state: int
    accepts: dict[int, tuple[Hashable, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.transitions = np.ascontiguousarray(self.transitions, dtype=np.int64)
        if self.transitions.ndim != 2 or self.transitions.shape[1] != alphabet.NUM_CODES:
            raise AutomatonError(
                f"DFA transition table must be (states, {alphabet.NUM_CODES})"
            )
        if not 0 <= self.start_state < self.num_states:
            raise AutomatonError("DFA start state out of range")
        if self.num_states and (
            self.transitions.min() < 0 or self.transitions.max() >= self.num_states
        ):
            raise AutomatonError("DFA transition table references unknown states")

    @property
    def num_states(self) -> int:
        return int(self.transitions.shape[0])

    def run(self, codes: np.ndarray) -> Iterator[tuple[int, Hashable]]:
        """Yield ``(position, label)`` for every accept activation."""
        state = self.start_state
        table = self.transitions
        accepts = self.accepts
        for position, code in enumerate(np.asarray(codes, dtype=np.uint8)):
            state = int(table[state, int(code)])
            for label in accepts.get(state, ()):
                yield position, label

    def match_count(self, codes: np.ndarray) -> int:
        """Number of accept activations over the input."""
        return sum(1 for _ in self.run(codes))

    def run_vectorized(self, codes: np.ndarray) -> list[tuple[int, Hashable]]:
        """Same as :meth:`run`, but as a list (kept simple: DFA stepping
        is inherently sequential; engines that need throughput use the
        shared vectorised matcher instead)."""
        return list(self.run(codes))


def determinize(nfa: Nfa, *, max_states: int | None = None) -> Dfa:
    """Subset-construct a DFA from *nfa* under search semantics.

    Requires that no all-input start state carries an accept label:
    otherwise whether that label fires would depend on *how* a subset
    was entered (by consumption vs re-injection), which a DFA state
    cannot represent. Compiled search automata satisfy this by
    construction.

    ``max_states`` bounds the subset construction: exceeding it raises
    :class:`~repro.errors.StateBlowupError` instead of letting a
    pathological automaton run away. ``None`` means unbounded.
    """
    for state, all_input in nfa.start_states().items():
        if all_input and nfa.accept_labels(state):
            raise AutomatonError(
                "cannot determinize: all-input start state carries accept labels"
            )
    initial = nfa.initial_active()
    index_of: dict[frozenset[int], int] = {initial: 0}
    worklist = [initial]
    rows: list[list[int]] = []
    accepts: dict[int, tuple[Hashable, ...]] = {}

    def labels_of(states: frozenset[int]) -> tuple[Hashable, ...]:
        labels: list[Hashable] = []
        for state in sorted(states):
            labels.extend(nfa.accept_labels(state))
        return tuple(dict.fromkeys(labels))

    # Note: initial-state accepts are intentionally not recorded; reports
    # fire on entry-by-consumption, mirroring Nfa.run.
    while worklist:
        subset = worklist.pop()
        row = [0] * alphabet.NUM_CODES
        for code in range(alphabet.NUM_CODES):
            successor = nfa.step(subset, code)
            slot = index_of.get(successor)
            if slot is None:
                slot = len(index_of)
                if max_states is not None and slot >= max_states:
                    raise StateBlowupError(
                        f"subset construction exceeded {max_states} states"
                    )
                index_of[successor] = slot
                worklist.append(successor)
            row[code] = slot
            labels = labels_of(_entered_part(nfa, subset, code))
            if labels:
                accepts.setdefault(slot, labels)
        while len(rows) <= index_of[subset]:
            rows.append([0] * alphabet.NUM_CODES)
        rows[index_of[subset]] = row
    table = np.array(rows, dtype=np.int64)
    return Dfa(table, 0, accepts)


def _entered_part(nfa: Nfa, subset: frozenset[int], code: int) -> frozenset[int]:
    """States entered by consuming *code* (excluding start re-injection)."""
    moved: set[int] = set()
    for state in subset:
        for char_class, target in nfa.transitions_from(state):
            if (char_class.mask >> code) & 1:
                moved.add(target)
    return nfa.epsilon_closure(moved)


def minimize(dfa: Dfa) -> Dfa:
    """Moore partition refinement, distinguishing states by accept-label set.

    Vectorised: each pass builds one ``(states, 1 + NUM_CODES)`` signature
    matrix — a state's own block plus the block of each successor — and
    splits every block at once with ``np.unique``, so refinement costs a
    handful of array passes instead of a per-splitter set walk. On the
    mm=3 compiled guides (≈20k states) this is ~two orders of magnitude
    faster than the previous splitter-worklist implementation, which is
    what makes the equivalence prover's grid sweep affordable.
    """
    n = dfa.num_states
    if n == 0:
        return dfa
    # Initial partition: group states by their accept label set.
    label_signature: dict[int, tuple[str, ...]] = {
        state: tuple(sorted(map(repr, dfa.accepts.get(state, ()))))
        for state in range(n)
    }
    first_blocks: dict[tuple[str, ...], int] = {}
    block = np.empty(n, dtype=np.int64)
    for state in range(n):
        block[state] = first_blocks.setdefault(label_signature[state], len(first_blocks))
    num_blocks = len(first_blocks)
    table = dfa.transitions
    rows = np.empty((n, 1 + alphabet.NUM_CODES), dtype=np.int64)
    while True:
        rows[:, 0] = block
        for code in range(alphabet.NUM_CODES):
            rows[:, 1 + code] = block[table[:, code]]
        _, inverse = np.unique(rows, axis=0, return_inverse=True)
        block = inverse.ravel().astype(np.int64)
        refined = int(block.max()) + 1
        if refined == num_blocks:
            break
        num_blocks = refined

    # Deterministic block numbering: order blocks by their smallest state.
    representative = np.full(num_blocks, n, dtype=np.int64)
    np.minimum.at(representative, block, np.arange(n, dtype=np.int64))
    order = np.argsort(representative)
    rank = np.empty(num_blocks, dtype=np.int64)
    rank[order] = np.arange(num_blocks, dtype=np.int64)
    block = rank[block]
    representative = representative[order]

    new_table = block[table[representative]]
    accepts: dict[int, tuple[Hashable, ...]] = {}
    for block_id in range(num_blocks):
        labels = dfa.accepts.get(int(representative[block_id]), ())
        if labels:
            accepts[block_id] = labels
    return Dfa(new_table, int(block[dfa.start_state]), accepts)


def _label_set(dfa: Dfa, state: int) -> frozenset[Hashable]:
    return frozenset(dfa.accepts.get(state, ()))


def isomorphic(left: Dfa, right: Dfa) -> bool:
    """Decide whether two DFAs are isomorphic as Moore machines.

    Walks both machines in lockstep from the start states, building a
    state bijection and comparing accept-label sets. For *minimal* DFAs
    whose states are all reachable (what :func:`determinize` followed by
    :func:`minimize` produces), isomorphism holds exactly when the two
    machines report identical labels at identical positions on every
    input — this is the equivalence prover's fast path.
    """
    if left.num_states != right.num_states:
        return False
    left_to_right: dict[int, int] = {left.start_state: right.start_state}
    right_to_left: dict[int, int] = {right.start_state: left.start_state}
    queue: deque[tuple[int, int]] = deque([(left.start_state, right.start_state)])
    while queue:
        a, b = queue.popleft()
        if _label_set(left, a) != _label_set(right, b):
            return False
        for code in range(alphabet.NUM_CODES):
            na = int(left.transitions[a, code])
            nb = int(right.transitions[b, code])
            mapped = left_to_right.get(na)
            if mapped is None:
                if nb in right_to_left:
                    return False
                left_to_right[na] = nb
                right_to_left[nb] = na
                queue.append((na, nb))
            elif mapped != nb:
                return False
    return len(left_to_right) == left.num_states


@dataclass(frozen=True)
class Distinguisher:
    """The shortest input on which two DFAs report different labels.

    ``word`` is genome text; after consuming its final symbol the two
    machines land in states whose accept-label sets differ
    (``left_labels`` vs ``right_labels``). ``pairs_explored`` counts
    product-DFA states visited by the BFS, for observability.
    """

    word: str
    left_labels: frozenset[Hashable]
    right_labels: frozenset[Hashable]
    pairs_explored: int


def shortest_distinguishing_word(left: Dfa, right: Dfa) -> Optional[Distinguisher]:
    """BFS the product DFA for the shortest label-disagreement input.

    Labels fire on entry-by-consumption, so the start pair is compared
    only if some word re-enters it; every other pair is compared the
    first time an edge reaches it. Returns ``None`` when the machines
    agree on every input (they are equivalent).
    """
    start = (left.start_state, right.start_state)
    parents: dict[tuple[int, int], tuple[tuple[int, int], int]] = {}
    seen: set[tuple[int, int]] = {start}
    compared: set[tuple[int, int]] = set()
    queue: deque[tuple[int, int]] = deque([start])
    explored = 0

    def rebuild(pair: tuple[int, int]) -> str:
        codes: list[int] = []
        while pair in parents:
            pair, code = parents[pair]
            codes.append(code)
        codes.reverse()
        return alphabet.decode(np.array(codes, dtype=np.uint8))

    while queue:
        a, b = queue.popleft()
        explored += 1
        for code in range(alphabet.NUM_CODES):
            successor = (int(left.transitions[a, code]), int(right.transitions[b, code]))
            if successor not in seen:
                seen.add(successor)
                parents[successor] = ((a, b), code)
                queue.append(successor)
            if successor not in compared:
                compared.add(successor)
                left_labels = _label_set(left, successor[0])
                right_labels = _label_set(right, successor[1])
                if left_labels != right_labels:
                    prefix = rebuild((a, b))
                    return Distinguisher(
                        word=prefix + alphabet.base_of(code),
                        left_labels=left_labels,
                        right_labels=right_labels,
                        pairs_explored=explored,
                    )
    return None
