"""Deterministic automata: subset construction and Hopcroft minimisation.

The HyperScan proxy engine compiles guide automata to DFAs (HyperScan's
fast paths are DFA-based), and the property-test suite uses NFA ≡ DFA
equivalence as an oracle for the NFA machinery itself.

Determinisation operates on the *search* semantics of the source NFA:
all-input start states are re-injected on every step, so the resulting
DFA scans unanchored input with one transition per symbol and no
restart logic — precisely the structure that makes DFA scanning fast on
a CPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator

import numpy as np

from .. import alphabet
from ..errors import AutomatonError
from .nfa import Nfa


@dataclass
class Dfa:
    """A complete DFA over the genome code alphabet.

    ``transitions`` has shape ``(num_states, NUM_CODES)``; entry
    ``[s, c]`` is the successor of state ``s`` on symbol code ``c``.
    ``accepts`` maps a state to the tuple of labels it reports.
    """

    transitions: np.ndarray
    start_state: int
    accepts: dict[int, tuple[Hashable, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.transitions = np.ascontiguousarray(self.transitions, dtype=np.int64)
        if self.transitions.ndim != 2 or self.transitions.shape[1] != alphabet.NUM_CODES:
            raise AutomatonError(
                f"DFA transition table must be (states, {alphabet.NUM_CODES})"
            )
        if not 0 <= self.start_state < self.num_states:
            raise AutomatonError("DFA start state out of range")
        if self.num_states and (
            self.transitions.min() < 0 or self.transitions.max() >= self.num_states
        ):
            raise AutomatonError("DFA transition table references unknown states")

    @property
    def num_states(self) -> int:
        return int(self.transitions.shape[0])

    def run(self, codes: np.ndarray) -> Iterator[tuple[int, Hashable]]:
        """Yield ``(position, label)`` for every accept activation."""
        state = self.start_state
        table = self.transitions
        accepts = self.accepts
        for position, code in enumerate(np.asarray(codes, dtype=np.uint8)):
            state = int(table[state, int(code)])
            for label in accepts.get(state, ()):
                yield position, label

    def match_count(self, codes: np.ndarray) -> int:
        """Number of accept activations over the input."""
        return sum(1 for _ in self.run(codes))

    def run_vectorized(self, codes: np.ndarray) -> list[tuple[int, Hashable]]:
        """Same as :meth:`run`, but as a list (kept simple: DFA stepping
        is inherently sequential; engines that need throughput use the
        shared vectorised matcher instead)."""
        return list(self.run(codes))


def determinize(nfa: Nfa) -> Dfa:
    """Subset-construct a DFA from *nfa* under search semantics.

    Requires that no all-input start state carries an accept label:
    otherwise whether that label fires would depend on *how* a subset
    was entered (by consumption vs re-injection), which a DFA state
    cannot represent. Compiled search automata satisfy this by
    construction.
    """
    for state, all_input in nfa.start_states().items():
        if all_input and nfa.accept_labels(state):
            raise AutomatonError(
                "cannot determinize: all-input start state carries accept labels"
            )
    initial = nfa.initial_active()
    index_of: dict[frozenset[int], int] = {initial: 0}
    worklist = [initial]
    rows: list[list[int]] = []
    accepts: dict[int, tuple[Hashable, ...]] = {}

    def labels_of(states: frozenset[int]) -> tuple[Hashable, ...]:
        labels: list[Hashable] = []
        for state in sorted(states):
            labels.extend(nfa.accept_labels(state))
        return tuple(dict.fromkeys(labels))

    # Note: initial-state accepts are intentionally not recorded; reports
    # fire on entry-by-consumption, mirroring Nfa.run.
    while worklist:
        subset = worklist.pop()
        row = [0] * alphabet.NUM_CODES
        for code in range(alphabet.NUM_CODES):
            successor = nfa.step(subset, code)
            slot = index_of.get(successor)
            if slot is None:
                slot = len(index_of)
                index_of[successor] = slot
                worklist.append(successor)
            row[code] = slot
            labels = labels_of(_entered_part(nfa, subset, code))
            if labels:
                accepts.setdefault(slot, labels)
        while len(rows) <= index_of[subset]:
            rows.append([0] * alphabet.NUM_CODES)
        rows[index_of[subset]] = row
    table = np.array(rows, dtype=np.int64)
    return Dfa(table, 0, accepts)


def _entered_part(nfa: Nfa, subset: frozenset[int], code: int) -> frozenset[int]:
    """States entered by consuming *code* (excluding start re-injection)."""
    moved: set[int] = set()
    for state in subset:
        for char_class, target in nfa.transitions_from(state):
            if (char_class.mask >> code) & 1:
                moved.add(target)
    return nfa.epsilon_closure(moved)


def minimize(dfa: Dfa) -> Dfa:
    """Hopcroft minimisation, distinguishing states by accept-label set."""
    n = dfa.num_states
    if n == 0:
        return dfa
    # Initial partition: group states by their accept label tuple.
    signature: dict[int, tuple] = {
        state: tuple(sorted(map(repr, dfa.accepts.get(state, ())))) for state in range(n)
    }
    blocks: dict[tuple, set[int]] = {}
    for state, sig in signature.items():
        blocks.setdefault(sig, set()).add(state)
    partition: list[set[int]] = list(blocks.values())
    worklist: list[set[int]] = [block.copy() for block in partition]

    # Reverse transition index: predecessors[c][s] = states entering s on c.
    predecessors: list[dict[int, set[int]]] = [
        {} for _ in range(alphabet.NUM_CODES)
    ]
    for state in range(n):
        for code in range(alphabet.NUM_CODES):
            target = int(dfa.transitions[state, code])
            predecessors[code].setdefault(target, set()).add(state)

    while worklist:
        splitter = worklist.pop()
        for code in range(alphabet.NUM_CODES):
            incoming: set[int] = set()
            for target in splitter:
                incoming |= predecessors[code].get(target, set())
            if not incoming:
                continue
            next_partition: list[set[int]] = []
            for block in partition:
                inside = block & incoming
                outside = block - incoming
                if inside and outside:
                    next_partition.append(inside)
                    next_partition.append(outside)
                    if block in worklist:
                        worklist.remove(block)
                        worklist.append(inside)
                        worklist.append(outside)
                    else:
                        worklist.append(inside if len(inside) <= len(outside) else outside)
                else:
                    next_partition.append(block)
            partition = next_partition

    block_of = {}
    for block_id, block in enumerate(partition):
        for state in block:
            block_of[state] = block_id
    table = np.zeros((len(partition), alphabet.NUM_CODES), dtype=np.int64)
    accepts: dict[int, tuple[Hashable, ...]] = {}
    for block_id, block in enumerate(partition):
        representative = next(iter(block))
        for code in range(alphabet.NUM_CODES):
            table[block_id, code] = block_of[int(dfa.transitions[representative, code])]
        labels = dfa.accepts.get(representative, ())
        if labels:
            accepts[block_id] = labels
    return Dfa(table, block_of[dfa.start_state], accepts)
