"""Two-symbol striding: automata that consume symbol *pairs*.

One of the improvements the paper proposes for the spatial platforms is
multi-symbol processing: recompile the automata over an alphabet of
symbol pairs so the device consumes two genome bases per clock, halving
kernel cycles at the price of larger character classes and more states.
This module implements the transformation for real (the timing models
price it; this executes it), for the mismatch-counting grid automata.

Construction
------------
The pair alphabet has ``5 x 5 = 25`` codes (``pair = first * 5 +
second``). Because the stream is cut into pairs at fixed boundaries, a
site can start at either parity, so a guide compiles into **two phase
automata**: phase 0 aligns the pattern to a pair boundary; phase 1
prepends a wildcard position (the site's first base is the *second*
element of its first pair). Odd pattern-plus-phase lengths likewise get
a trailing wildcard. Wildcard positions match anything and never spend
budget.

Each grid step now consumes a pair, so a mismatch row can advance by 0,
1 or 2 mismatches per step, with pair classes ``match x match``,
``match x mismatch | mismatch x match`` (and their single-sided
variants when only one of the two positions is budgeted) and
``mismatch x mismatch``.

Equivalence with the 1-stride automaton — identical reported genomic
spans on every input, both parities, odd and even stream lengths — is
pinned by property tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable, Iterator, Sequence

import numpy as np

from .. import alphabet
from ..errors import AutomatonError, CompileError
from .charclass import CharClass

if TYPE_CHECKING:  # runtime import would cycle through repro.core
    from ..core.hamming import PatternSegment

#: number of pair-symbol codes.
PAIR_CODES = alphabet.NUM_CODES * alphabet.NUM_CODES

_FULL_PAIR_MASK = (1 << PAIR_CODES) - 1


@dataclass(frozen=True, order=True)
class PairClass:
    """An immutable set of symbol-pair codes (25-bit mask)."""

    mask: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.mask <= _FULL_PAIR_MASK:
            raise AutomatonError("pair-class mask out of range")

    @classmethod
    def from_classes(cls, first: CharClass, second: CharClass) -> "PairClass":
        """The product class: first symbol in *first*, second in *second*."""
        mask = 0
        for c1 in range(alphabet.NUM_CODES):
            if not (first.mask >> c1) & 1:
                continue
            for c2 in range(alphabet.NUM_CODES):
                if (second.mask >> c2) & 1:
                    mask |= 1 << (c1 * alphabet.NUM_CODES + c2)
        return cls(mask)

    def __or__(self, other: "PairClass") -> "PairClass":
        return PairClass(self.mask | other.mask)

    def __contains__(self, pair_code: int) -> bool:
        return bool((self.mask >> int(pair_code)) & 1)

    def __bool__(self) -> bool:
        return self.mask != 0

    def cardinality(self) -> int:
        return bin(self.mask).count("1")


@dataclass(frozen=True)
class StridedReport:
    """Accept label of a strided automaton row.

    ``site_length`` is the true genomic site length; ``pad_suffix`` is 1
    when the final pair's second position was a wildcard pad, in which
    case the site ends one symbol before the consumed pair region.
    """

    label: Hashable
    site_length: int
    pad_suffix: int


class StridedAutomaton:
    """A homogeneous automaton over the pair alphabet (2 symbols/cycle)."""

    def __init__(self) -> None:
        self._classes: list[PairClass] = []
        self._starts: list[bool] = []
        self._reports: list[tuple[StridedReport, ...]] = []
        self._successors: list[list[int]] = []

    def add_state(
        self,
        pair_class: PairClass,
        *,
        all_input_start: bool = False,
        reports: tuple[StridedReport, ...] = (),
    ) -> int:
        if not pair_class:
            raise AutomatonError("a strided state must match at least one pair")
        self._classes.append(pair_class)
        self._starts.append(all_input_start)
        self._reports.append(tuple(reports))
        self._successors.append([])
        return len(self._classes) - 1

    def connect(self, source: int, target: int) -> None:
        for state in (source, target):
            if not 0 <= state < len(self._classes):
                raise AutomatonError(f"unknown strided state {state}")
        if target not in self._successors[source]:
            self._successors[source].append(target)

    @property
    def num_states(self) -> int:
        return len(self._classes)

    @property
    def num_edges(self) -> int:
        return sum(len(outs) for outs in self._successors)

    # -- introspection (checker surface) -----------------------------------

    def pair_class_of(self, state: int) -> PairClass:
        """The pair class state *state* matches on."""
        return self._classes[state]

    def is_start(self, state: int) -> bool:
        """Whether *state* is an all-input start state."""
        return self._starts[state]

    def reports_of(self, state: int) -> tuple[StridedReport, ...]:
        """Report records attached to *state*."""
        return self._reports[state]

    def successors(self, state: int) -> list[int]:
        """Successor state ids of *state*."""
        return list(self._successors[state])

    def merge(self, other: "StridedAutomaton") -> None:
        """Disjoint union (for multi-guide / dual-phase networks)."""
        offset = self.num_states
        for state in range(other.num_states):
            self._classes.append(other._classes[state])
            self._starts.append(other._starts[state])
            self._reports.append(other._reports[state])
            self._successors.append(
                [target + offset for target in other._successors[state]]
            )

    def run_pairs(self, pair_codes: np.ndarray) -> Iterator[tuple[int, StridedReport]]:
        """Consume pair codes; yield ``(pair_index, report)`` activations."""
        n = self.num_states
        driven = np.array(self._starts, dtype=bool)
        start_mask = driven.copy()
        enabled_for = [
            np.array([(cls.mask >> code) & 1 for cls in self._classes], dtype=bool)
            for code in range(PAIR_CODES)
        ]
        for index, code in enumerate(np.asarray(pair_codes, dtype=np.int64)):
            matched = driven & enabled_for[int(code)]
            matched_ids = np.nonzero(matched)[0]
            for state in matched_ids.tolist():
                for report in self._reports[state]:
                    yield index, report
            driven = start_mask.copy()
            for state in matched_ids.tolist():
                for target in self._successors[state]:
                    driven[target] = True


def pack_pairs(codes: np.ndarray) -> np.ndarray:
    """Pack a symbol-code stream into pair codes (N-padded to even length)."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size % 2:
        codes = np.concatenate([codes, np.array([alphabet.CODE_N], dtype=np.uint8)])
    return codes[0::2].astype(np.int64) * alphabet.NUM_CODES + codes[1::2]


@dataclass(frozen=True)
class _Position:
    """One pattern slot after phase/pad extension."""

    match: CharClass
    mismatch: CharClass  #: empty when the slot cannot spend budget

    @classmethod
    def wildcard(cls) -> "_Position":
        return cls(CharClass.any(), CharClass.empty())

    @classmethod
    def exact(cls, symbol: str) -> "_Position":
        return cls(CharClass.from_iupac(symbol), CharClass.empty())

    @classmethod
    def budgeted(cls, symbol: str) -> "_Position":
        return cls(CharClass.from_iupac(symbol), CharClass.mismatch_of(symbol))


def _extended_positions(
    segments: Sequence[PatternSegment], phase: int
) -> tuple[list[_Position], int]:
    """Flatten segments into slots, pad to pair alignment; return pad_suffix."""
    positions: list[_Position] = []
    if phase == 1:
        positions.append(_Position.wildcard())
    for segment in segments:
        for symbol in segment.text:
            if segment.budgeted:
                positions.append(_Position.budgeted(symbol))
            else:
                positions.append(_Position.exact(symbol))
    pad_suffix = 0
    if len(positions) % 2:
        positions.append(_Position.wildcard())
        pad_suffix = 1
    return positions, pad_suffix


def build_strided_hamming(
    segments: Sequence[PatternSegment],
    max_mismatches: int,
    *,
    label_factory: Callable[[int], Hashable],
) -> StridedAutomaton:
    """Compile a mismatch grid over the pair alphabet (both phases).

    ``segments`` is the same list of
    :class:`repro.core.hamming.PatternSegment` the 1-stride compiler
    takes; ``label_factory(mismatches)`` builds the row's base label.
    Returns one automaton containing the phase-0 and phase-1 networks.
    """
    if max_mismatches < 0:
        raise CompileError("mismatch budget must be non-negative")
    site_length = sum(len(segment.text) for segment in segments)
    combined = StridedAutomaton()
    for phase in (0, 1):
        combined.merge(_build_phase(segments, max_mismatches, phase, site_length, label_factory))
    return combined


def _build_phase(
    segments: Sequence[PatternSegment],
    max_mismatches: int,
    phase: int,
    site_length: int,
    label_factory: Callable[[int], Hashable],
) -> StridedAutomaton:
    positions, pad_suffix = _extended_positions(segments, phase)
    steps = len(positions) // 2
    automaton = StridedAutomaton()
    # frontier[j] -> state id for "consumed this many pairs with j mismatches";
    # the entry frontier is virtual (states are targets of pair steps).
    # For each pair step, each (previous row j, delta) pair produces a
    # class; rows at the same (step, j') merge their classes into one
    # state per (step, j', class)? One state per (step, j') with the OR
    # of all incoming classes would be wrong (it must pair with the
    # right predecessor) — so states are per (step, j_target, class).
    frontier: dict[int, list[int]] = {0: []}  # row -> state ids at current step
    for step in range(steps):
        first, second = positions[2 * step], positions[2 * step + 1]
        moves: list[tuple[int, PairClass]] = []
        for delta_a, class_a in ((0, first.match), (1, first.mismatch)):
            if not class_a:
                continue
            for delta_b, class_b in ((0, second.match), (1, second.mismatch)):
                if not class_b:
                    continue
                moves.append((delta_a + delta_b, PairClass.from_classes(class_a, class_b)))
        next_frontier: dict[int, list[int]] = {}
        for row, sources in frontier.items():
            for delta, pair_class in moves:
                target_row = row + delta
                if target_row > max_mismatches:
                    continue
                state = automaton.add_state(
                    pair_class, all_input_start=(step == 0)
                )
                if step > 0:
                    for source in sources:
                        automaton.connect(source, state)
                next_frontier.setdefault(target_row, []).append(state)
        frontier = next_frontier
    # Attach reports to the last step's states, per arrival row.
    for row, states in frontier.items():
        report = StridedReport(
            label=label_factory(row), site_length=site_length, pad_suffix=pad_suffix
        )
        for state in states:
            automaton._reports[state] = automaton._reports[state] + (report,)
    return automaton


def strided_search(
    codes: np.ndarray, automaton: StridedAutomaton
) -> list[tuple[int, Hashable]]:
    """Run a strided automaton over a symbol stream.

    Returns ``(position, label)`` pairs in *symbol* coordinates, where
    ``position`` is the index of the site's last symbol — identical to
    the 1-stride engines' report convention. Accepts completed only by
    the N-padding beyond the true stream end are discarded.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    pair_codes = pack_pairs(codes)
    seen: set[tuple[int, Hashable]] = set()
    for pair_index, report in automaton.run_pairs(pair_codes):
        end = 2 * (pair_index + 1) - report.pad_suffix
        if end > codes.size:
            continue
        # Several same-row states can fire on the same cycle (the two
        # one-mismatch pair classes are distinct states); one report.
        seen.add((end - 1, report.label))
    return sorted(seen, key=lambda item: item[0])


def strided_state_count(segments: Sequence[PatternSegment], max_mismatches: int) -> int:
    """Predicted state count of the dual-phase strided automaton."""
    total = 0
    for phase in (0, 1):
        positions, _ = _extended_positions(segments, phase)
        frontier = {0: 1}
        for step in range(len(positions) // 2):
            first, second = positions[2 * step], positions[2 * step + 1]
            deltas = [
                da + db
                for da, ca in ((0, first.match), (1, first.mismatch))
                if ca
                for db, cb in ((0, second.match), (1, second.mismatch))
                if cb
            ]
            next_frontier: dict[int, int] = {}
            for row in frontier:
                for delta in deltas:
                    if row + delta <= max_mismatches:
                        next_frontier[row + delta] = next_frontier.get(row + delta, 0) + 1
                        total += 1
            frontier = next_frontier
    return total
