"""ANML-style serialisation of homogeneous automata.

The Automata Processor toolchain exchanges automata as ANML (Automata
Network Markup Language) XML. This module writes and reads a faithful
subset of that format — ``state-transition-element`` nodes with
``symbol-set``, ``start`` attribute, ``activate-on-match`` edges and
``report-on-match`` flags — so compiled guide automata can be inspected
with the same tooling mindset the paper's AP flow used, and round-trip
through text for caching.

Report labels are serialised via ``report-code`` as a ``repr`` string;
round-tripping therefore preserves label *identity text*, and
:func:`from_anml` restores them as strings (the engines only require
labels to be hashable and distinct).
"""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree
from typing import IO, Union
from pathlib import Path

from ..errors import AutomatonError
from .charclass import CharClass
from .homogeneous import HomogeneousAutomaton, StartMode

_START_ATTR = {
    StartMode.NONE: "none",
    StartMode.ALL_INPUT: "all-input",
    StartMode.START_OF_DATA: "start-of-data",
}
_START_OF_ATTR = {value: key for key, value in _START_ATTR.items()}


def to_anml(automaton: HomogeneousAutomaton, network_id: str = "offtarget") -> str:
    """Serialise *automaton* into an ANML XML string."""
    root = ElementTree.Element("anml", {"version": "1.0"})
    network = ElementTree.SubElement(
        root, "automata-network", {"id": network_id}
    )
    for ste in automaton.stes():
        element = ElementTree.SubElement(
            network,
            "state-transition-element",
            {
                "id": f"ste{ste.ste_id}",
                "symbol-set": ste.char_class.symbols(),
                "start": _START_ATTR[ste.start],
            },
        )
        for index, label in enumerate(ste.reports):
            ElementTree.SubElement(
                element,
                "report-on-match",
                {"reportcode": repr(label), "index": str(index)},
            )
        for target in automaton.successors(ste.ste_id):
            ElementTree.SubElement(
                element, "activate-on-match", {"element": f"ste{target}"}
            )
    ElementTree.indent(root)
    return ElementTree.tostring(root, encoding="unicode")


def from_anml(source: Union[str, Path, IO[str]], *, strict: bool = True) -> HomogeneousAutomaton:
    """Parse an ANML string/path back into a homogeneous automaton.

    ``strict=True`` (the default) rejects structurally unusable
    elements — an STE with an empty symbol set — at load time.
    ``strict=False`` admits them so the automaton can be handed to
    :mod:`repro.check.automata` for a *complete* diagnosis (the
    load-then-verify flow the ``repro-offtarget check --anml``
    subcommand uses on automata produced by external toolchains).
    """
    if isinstance(source, Path) or (
        isinstance(source, str) and "\n" not in source and source.endswith(".anml")
    ):
        text = Path(source).read_text(encoding="utf-8")
    elif isinstance(source, str):
        text = source
    else:
        text = source.read()
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as exc:
        raise AutomatonError(f"malformed ANML: {exc}") from exc
    network = root.find("automata-network")
    if network is None:
        raise AutomatonError("ANML document has no automata-network element")
    automaton = HomogeneousAutomaton()
    id_of: dict[str, int] = {}
    edges: list[tuple[str, str]] = []
    for element in network.findall("state-transition-element"):
        anml_id = element.get("id")
        symbols = element.get("symbol-set", "")
        start = element.get("start", "none")
        if anml_id is None:
            raise AutomatonError("state-transition-element without id")
        if start not in _START_OF_ATTR:
            raise AutomatonError(f"unknown start mode {start!r}")
        reports = tuple(
            report.get("reportcode", "")
            for report in element.findall("report-on-match")
        )
        try:
            char_class = CharClass.of(symbols)
        except Exception as exc:
            raise AutomatonError(f"bad symbol-set {symbols!r} on {anml_id}") from exc
        ste_id = automaton.add_ste(
            char_class,
            start=_START_OF_ATTR[start],
            reports=reports,
            name=anml_id,
            allow_empty=not strict,
        )
        id_of[anml_id] = ste_id
        for edge in element.findall("activate-on-match"):
            target = edge.get("element")
            if target is None:
                raise AutomatonError(f"activate-on-match without element on {anml_id}")
            edges.append((anml_id, target))
    for source_id, target_id in edges:
        if target_id not in id_of:
            raise AutomatonError(f"edge to unknown element {target_id!r}")
        automaton.connect(id_of[source_id], id_of[target_id])
    return automaton
