"""Homogeneous (state-labelled) automata — the ANML/STE form.

Spatial automata hardware (Micron's Automata Processor, FPGA automata
overlays) does not implement edge-labelled NFAs. It implements
*homogeneous* automata: every state is a State Transition Element (STE)
carrying a character class; bare wires connect STEs; an STE *matches*
on a cycle when its enable input is driven (some predecessor matched on
the previous cycle, or it is a start STE) and the current symbol lies
in its class. Reporting STEs raise a report event on every cycle they
match.

:func:`nfa_to_homogeneous` performs the standard conversion from the
edge-labelled form (one STE per distinct incoming character class of
each NFA state), which on the paper's mismatch-grid automata yields
exactly the match-STE/mismatch-STE pairs of the paper's Figure-style
design.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, Iterator

import numpy as np

from ..errors import AutomatonError
from .charclass import CharClass
from .nfa import Nfa


class StartMode(enum.Enum):
    """How an STE's enable input behaves."""

    NONE = "none"  #: driven only by predecessor matches
    ALL_INPUT = "all-input"  #: enabled on every cycle (unanchored search)
    START_OF_DATA = "start-of-data"  #: enabled on the first cycle only


@dataclass(frozen=True)
class Ste:
    """One State Transition Element."""

    ste_id: int
    char_class: CharClass
    start: StartMode = StartMode.NONE
    reports: tuple[Hashable, ...] = ()
    name: str = ""


@dataclass(frozen=True)
class CycleStats:
    """Micro-architectural statistics from a cycle-accurate run."""

    cycles: int
    total_matches: int  #: sum over cycles of matched-STE count
    peak_active: int  #: max matched-STE count in any cycle
    report_events: int  #: total report activations
    report_cycles: int  #: cycles with at least one report

    @property
    def mean_active(self) -> float:
        """Average number of matched STEs per cycle."""
        return self.total_matches / self.cycles if self.cycles else 0.0


class HomogeneousAutomaton:
    """A homogeneous automaton network, executable cycle-by-cycle."""

    def __init__(self) -> None:
        self._stes: list[Ste] = []
        self._successors: list[list[int]] = []
        self._frozen: _FrozenArrays | None = None

    # -- construction ------------------------------------------------------

    def add_ste(
        self,
        char_class: CharClass,
        *,
        start: StartMode = StartMode.NONE,
        reports: tuple[Hashable, ...] = (),
        name: str = "",
        allow_empty: bool = False,
    ) -> int:
        """Add an STE and return its id.

        Programmatic construction fails fast on an empty character
        class; ``allow_empty=True`` admits it anyway, which is the
        load-then-verify path deserialisers use so that
        :mod:`repro.check.automata` can *diagnose* a malformed external
        automaton instead of the loader crashing on its first defect.
        """
        if not char_class and not allow_empty:
            raise AutomatonError("an STE must match at least one symbol")
        ste_id = len(self._stes)
        self._stes.append(
            Ste(ste_id, char_class, start=start, reports=tuple(reports), name=name or f"ste{ste_id}")
        )
        self._successors.append([])
        self._frozen = None
        return ste_id

    def connect(self, source: int, target: int) -> None:
        """Wire *source*'s output to *target*'s enable input."""
        for ste in (source, target):
            if not 0 <= ste < len(self._stes):
                raise AutomatonError(f"unknown STE id {ste}")
        if target not in self._successors[source]:
            self._successors[source].append(target)
            self._frozen = None

    # -- introspection -----------------------------------------------------

    @property
    def num_stes(self) -> int:
        return len(self._stes)

    @property
    def num_edges(self) -> int:
        return sum(len(outs) for outs in self._successors)

    def stes(self) -> Iterator[Ste]:
        return iter(self._stes)

    def ste(self, ste_id: int) -> Ste:
        return self._stes[ste_id]

    def successors(self, ste_id: int) -> list[int]:
        return list(self._successors[ste_id])

    def report_stes(self) -> list[Ste]:
        """The STEs that raise report events."""
        return [ste for ste in self._stes if ste.reports]

    def start_stes(self) -> list[Ste]:
        """The STEs with a start mode."""
        return [ste for ste in self._stes if ste.start is not StartMode.NONE]

    def max_fanout(self) -> int:
        """Largest out-degree (a routing-congestion proxy)."""
        return max((len(outs) for outs in self._successors), default=0)

    def merge(self, other: "HomogeneousAutomaton") -> dict[int, int]:
        """Append *other*'s network into this one (disjoint union).

        Returns the mapping from *other*'s STE ids to new ids — this is
        how a multi-guide library becomes one machine-sized network.
        """
        mapping: dict[int, int] = {}
        for ste in other.stes():
            mapping[ste.ste_id] = self.add_ste(
                ste.char_class, start=ste.start, reports=ste.reports, name=ste.name
            )
        for source, outs in enumerate(other._successors):
            for target in outs:
                self.connect(mapping[source], mapping[target])
        return mapping

    # -- execution ---------------------------------------------------------

    def _arrays(self) -> "_FrozenArrays":
        if self._frozen is None:
            self._frozen = _FrozenArrays(self)
        return self._frozen

    def run(self, codes: np.ndarray) -> Iterator[tuple[int, Hashable]]:
        """Cycle-accurate run; yields ``(cycle, label)`` per report event."""
        for cycle, _, labels in self._execute(codes, want_stats=False):
            for label in labels:
                yield cycle, label

    def run_with_stats(self, codes: np.ndarray) -> tuple[list[tuple[int, Hashable]], CycleStats]:
        """Run and also collect :class:`CycleStats`."""
        reports: list[tuple[int, Hashable]] = []
        total_matches = 0
        peak = 0
        report_events = 0
        report_cycles = 0
        cycles = 0
        for cycle, matched_count, labels in self._execute(codes, want_stats=True):
            cycles = cycle + 1
            total_matches += matched_count
            peak = max(peak, matched_count)
            if labels:
                report_cycles += 1
                report_events += len(labels)
                reports.extend((cycle, label) for label in labels)
        cycles = max(cycles, int(np.asarray(codes).size))
        return reports, CycleStats(
            cycles=cycles,
            total_matches=total_matches,
            peak_active=peak,
            report_events=report_events,
            report_cycles=report_cycles,
        )

    def _execute(
        self, codes: np.ndarray, *, want_stats: bool
    ) -> Iterator[tuple[int, int, list[Hashable]]]:
        codes = np.asarray(codes, dtype=np.uint8)
        arrays = self._arrays()
        driven = arrays.all_input | arrays.start_of_data
        for cycle, code in enumerate(codes):
            matched = driven & arrays.enabled_for[int(code)]
            matched_ids = np.nonzero(matched)[0]
            labels: list[Hashable] = []
            for ste_id in matched_ids:
                labels.extend(self._stes[int(ste_id)].reports)
            yield cycle, int(matched_ids.size), labels
            driven = arrays.all_input.copy()
            if matched_ids.size:
                successor_ids = arrays.successors_of(matched_ids)
                driven[successor_ids] = True


class _FrozenArrays:
    """Vectorised read-only view of a homogeneous automaton."""

    def __init__(self, automaton: HomogeneousAutomaton) -> None:
        n = automaton.num_stes
        masks = np.array([ste.char_class.mask for ste in automaton.stes()], dtype=np.uint8)
        # enabled_for[c][s]: does STE s's class contain symbol code c?
        from .. import alphabet

        self.enabled_for = [
            ((masks >> code) & 1).astype(bool) for code in range(alphabet.NUM_CODES)
        ]
        self.all_input = np.array(
            [ste.start is StartMode.ALL_INPUT for ste in automaton.stes()], dtype=bool
        )
        self.start_of_data = np.array(
            [ste.start is StartMode.START_OF_DATA for ste in automaton.stes()], dtype=bool
        )
        # CSR successor lists.
        counts = [len(automaton.successors(s)) for s in range(n)]
        self._offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self._offsets[1:])
        flat: list[int] = []
        for s in range(n):
            flat.extend(automaton.successors(s))
        self._flat = np.array(flat, dtype=np.int64)

    def successors_of(self, ste_ids: np.ndarray) -> np.ndarray:
        """Concatenated successor ids of all *ste_ids*."""
        pieces = [
            self._flat[self._offsets[s] : self._offsets[s + 1]] for s in ste_ids
        ]
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(pieces)


def nfa_to_homogeneous(nfa: Nfa) -> HomogeneousAutomaton:
    """Convert an edge-labelled NFA into homogeneous (STE) form.

    Epsilon edges are removed first. Each NFA state becomes one STE per
    distinct incoming character class; NFA start states with outgoing
    edges become start modes on their successors' STEs. Start states
    must be pure sources (no incoming edges and no accept labels) —
    compiled search automata satisfy this by construction.
    """
    flat = nfa.without_epsilon() if nfa.num_epsilon else nfa
    starts = flat.start_states()
    for state, _ in starts.items():
        if flat.accept_labels(state):
            raise AutomatonError("start states must not carry accept labels")
    incoming: dict[int, list[tuple[int, CharClass]]] = {}
    for source in range(flat.num_states):
        for char_class, target in flat.transitions_from(source):
            incoming.setdefault(target, []).append((source, char_class))
    for state in starts:
        if state in incoming:
            raise AutomatonError("start states must be pure sources")

    automaton = HomogeneousAutomaton()
    # ste_of[(state, class)] -> STE id; copies_of[state] -> all its STE ids.
    ste_of: dict[tuple[int, int], int] = {}
    copies_of: dict[int, list[int]] = {}
    for target, edges in incoming.items():
        classes = sorted({char_class for _, char_class in edges})
        labels = flat.accept_labels(target)
        for char_class in classes:
            start_mode = StartMode.NONE
            if any(source in starts for source, cc in edges if cc == char_class):
                # Entered directly from a start state: all-input for
                # search starts, start-of-data for anchored ones.
                all_input = any(
                    starts[source]
                    for source, cc in edges
                    if cc == char_class and source in starts
                )
                start_mode = StartMode.ALL_INPUT if all_input else StartMode.START_OF_DATA
            ste_id = automaton.add_ste(
                char_class,
                start=start_mode,
                reports=labels,
                name=f"{flat.name_of(target)}/{char_class.symbols()}",
            )
            ste_of[(target, char_class.mask)] = ste_id
            copies_of.setdefault(target, []).append(ste_id)
    for target, edges in incoming.items():
        for source, char_class in edges:
            if source in starts:
                continue  # start drive is encoded in the STE's start mode
            for source_ste in copies_of.get(source, ()):
                automaton.connect(source_ste, ste_of[(target, char_class.mask)])
    return automaton
