"""Protospacer-adjacent motif (PAM) definitions.

A Cas nuclease only cleaves next to its PAM; the PAM is matched
*exactly* (per its IUPAC pattern) and never consumes the mismatch
budget. SpCas9's canonical PAM is ``NGG`` on the 3' side of the
protospacer; the catalog also carries the relaxed ``NAG``/``NRG``
variants the off-target literature searches with, and a few other
nucleases for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import alphabet
from ..errors import PamError


@dataclass(frozen=True)
class Pam:
    """A PAM motif.

    Parameters
    ----------
    name:
        Catalog key, e.g. ``"NGG"``.
    pattern:
        IUPAC pattern matched exactly against the genome.
    side:
        ``"3prime"`` when the PAM follows the protospacer (Cas9 family),
        ``"5prime"`` when it precedes it (Cas12a family).
    nuclease:
        Human-readable nuclease name.
    """

    name: str
    pattern: str
    side: str
    nuclease: str

    def __post_init__(self) -> None:
        pattern = alphabet.validate_iupac(self.pattern, what=f"PAM {self.name!r}")
        object.__setattr__(self, "pattern", pattern)
        if self.side not in ("3prime", "5prime"):
            raise PamError(f"PAM side must be '3prime' or '5prime', got {self.side!r}")
        if not pattern:
            raise PamError("PAM pattern must be non-empty")

    def __len__(self) -> int:
        return len(self.pattern)

    def matches(self, site: str) -> bool:
        """Return True when *site* (concrete bases) satisfies the motif."""
        if len(site) != len(self.pattern):
            return False
        return all(
            alphabet.iupac_matches(pattern_symbol, base)
            for pattern_symbol, base in zip(self.pattern, site.upper())
        )

    def expected_hit_rate(self, gc_content: float = 0.41) -> float:
        """Probability that a random genome window satisfies the motif.

        Used by the timing and reporting models to predict candidate
        densities without scanning.
        """
        at = (1.0 - gc_content) / 2.0
        gc = gc_content / 2.0
        base_probability = {"A": at, "C": gc, "G": gc, "T": at}
        rate = 1.0
        for symbol in self.pattern:
            rate *= sum(base_probability[base] for base in alphabet.iupac_bases(symbol))
        return rate

    def reverse_complement_pattern(self) -> str:
        """The IUPAC pattern this PAM presents on the opposite strand."""
        return alphabet.reverse_complement(self.pattern)


#: Catalog of PAMs used throughout the evaluation.
PAM_CATALOG: dict[str, Pam] = {
    pam.name: pam
    for pam in (
        Pam("NGG", "NGG", "3prime", "SpCas9"),
        Pam("NAG", "NAG", "3prime", "SpCas9 (relaxed)"),
        Pam("NRG", "NRG", "3prime", "SpCas9 (NGG+NAG)"),
        Pam("NNGRRT", "NNGRRT", "3prime", "SaCas9"),
        Pam("NNNNGATT", "NNNNGATT", "3prime", "NmCas9"),
        Pam("TTTV", "TTTV", "5prime", "AsCpf1/Cas12a"),
        Pam("NNNNRYAC", "NNNNRYAC", "3prime", "CjCas9"),
    )
}


def get_pam(name_or_pattern: str) -> Pam:
    """Resolve a PAM by catalog name, or build an ad-hoc 3' PAM.

    An unknown *name_or_pattern* that is a valid IUPAC string becomes a
    custom 3'-side PAM, matching how the original tools accept free-form
    PAM patterns on the command line.
    """
    key = name_or_pattern.upper()
    if key in PAM_CATALOG:
        return PAM_CATALOG[key]
    if alphabet.is_iupac(key):
        return Pam(key, key, "3prime", "custom")
    raise PamError(f"unknown PAM {name_or_pattern!r}")
