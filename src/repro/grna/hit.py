"""Off-target hit records.

Every engine and baseline reports hits in this one canonical form so
they can be compared with plain set operations. A hit is keyed by
``(guide name, sequence name, strand, start, end)`` — the genomic span
of the matched site on the + strand — plus its edit counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .. import alphabet
from .guide import Guide


@dataclass(frozen=True, order=True)
class OffTargetHit:
    """One candidate off-target site.

    Attributes
    ----------
    guide_name:
        Name of the matching guide.
    sequence_name:
        Name of the reference sequence the site lies on.
    strand:
        ``"+"`` or ``"-"``; for ``"-"`` the site matches the guide's
        reverse-complement pattern, and *site* below is reported in
        guide orientation (i.e. reverse-complemented back).
    start, end:
        Half-open span of the site on the + strand of the reference.
    mismatches:
        Number of substituted protospacer positions.
    rna_bulges:
        Guide bases unpaired (genome site is shorter): deletions.
    dna_bulges:
        Genome bases unpaired (genome site is longer): insertions.
    site:
        The genomic site text, in guide orientation.
    """

    guide_name: str
    sequence_name: str
    strand: str
    start: int
    end: int
    mismatches: int
    rna_bulges: int = 0
    dna_bulges: int = 0
    site: str = ""

    @property
    def edits(self) -> int:
        """Total edit count (mismatches + both bulge kinds)."""
        return self.mismatches + self.rna_bulges + self.dna_bulges

    @property
    def key(self) -> tuple[str, str, str, int, int]:
        """Identity key used for deduplication and cross-engine comparison."""
        return (self.guide_name, self.sequence_name, self.strand, self.start, self.end)

    def to_bed_line(self) -> str:
        """Render as a BED6-style line (score = mismatch count)."""
        return "\t".join(
            (
                self.sequence_name,
                str(self.start),
                str(self.end),
                self.guide_name,
                str(self.mismatches),
                self.strand,
            )
        )


def dedupe_hits(hits: Iterable[OffTargetHit]) -> list[OffTargetHit]:
    """Collapse duplicate reports of the same site, keeping the best.

    Engines that explore bulge alignments can reach the same genomic
    span along several alignment paths; the canonical report keeps the
    one with the fewest total edits (ties broken by fewest bulges, then
    fewest mismatches).
    """
    best: dict[tuple, OffTargetHit] = {}
    for hit in hits:
        current = best.get(hit.key)
        if current is None or _edit_rank(hit) < _edit_rank(current):
            best[hit.key] = hit
    return sorted(best.values())


def _edit_rank(hit: OffTargetHit) -> tuple[int, int, int]:
    return (hit.edits, hit.rna_bulges + hit.dna_bulges, hit.mismatches)


def render_alignment(guide: Guide, hit: OffTargetHit) -> str:
    """Render a two-line guide-vs-site alignment for human inspection.

    Mismatched positions are lower-cased in the site line and marked
    with ``*`` in the rail between the lines. Only meaningful for
    bulge-free hits (equal lengths); bulged hits render with a gap
    notice instead.
    """
    pattern = guide.target_pattern
    site = hit.site
    if len(site) != len(pattern):
        return (
            f"{pattern}\n"
            f"(bulged alignment: {hit.rna_bulges} RNA / {hit.dna_bulges} DNA bulges)\n"
            f"{site}"
        )
    rail = []
    shown = []
    for pattern_symbol, base in zip(pattern, site):
        if alphabet.iupac_matches(pattern_symbol, base):
            rail.append("|")
            shown.append(base)
        else:
            rail.append("*")
            shown.append(base.lower())
    return f"{pattern}\n{''.join(rail)}\n{''.join(shown)}"
