"""Guide-RNA domain model: guides, PAMs, hit records, guide libraries."""

from .pam import Pam, PAM_CATALOG, get_pam
from .guide import Guide
from .hit import OffTargetHit, dedupe_hits, render_alignment
from .library import GuideLibrary, sample_guides_from_genome, parse_guide_table

__all__ = [
    "Pam",
    "PAM_CATALOG",
    "get_pam",
    "Guide",
    "OffTargetHit",
    "dedupe_hits",
    "render_alignment",
    "GuideLibrary",
    "sample_guides_from_genome",
    "parse_guide_table",
]
