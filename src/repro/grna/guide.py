"""The guide RNA value type.

A :class:`Guide` is a protospacer (the ~20 nt of the guide that pairs
with the genome) plus a :class:`~repro.grna.pam.Pam`. Its *target
pattern* is the IUPAC string a genomic site must resemble: protospacer
followed by PAM for 3'-PAM nucleases, PAM followed by protospacer for
5'-PAM nucleases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import alphabet
from ..errors import GuideError
from .pam import Pam, get_pam

#: Protospacer lengths accepted without an explicit override.
_MIN_LENGTH = 10
_MAX_LENGTH = 30


@dataclass(frozen=True)
class Guide:
    """An immutable guide RNA.

    Parameters
    ----------
    name:
        Identifier used in hit reports.
    protospacer:
        Concrete ``ACGT`` string, 5'→3', genome-strand orientation.
    pam:
        A :class:`Pam` or a catalog name / IUPAC pattern.
    min_length:
        Explicit opt-in floor for short protospacers. The default
        floor of ``10`` guards against typo-length guides in tables;
        truncated-guide designs (the <16 nt tru-gRNA case) pass the
        length they mean, down to 1.
    """

    name: str
    protospacer: str
    pam: Pam = field(default_factory=lambda: get_pam("NGG"))
    min_length: int | None = None

    def __post_init__(self) -> None:
        if isinstance(self.pam, str):
            object.__setattr__(self, "pam", get_pam(self.pam))
        if self.min_length is not None and self.min_length < 1:
            raise GuideError(
                f"guide {self.name!r} min_length must be >= 1, got {self.min_length}"
            )
        protospacer = self.protospacer.upper().replace("U", "T")
        if not alphabet.is_dna(protospacer):
            raise GuideError(
                f"guide {self.name!r} protospacer must be concrete ACGT, got "
                f"{self.protospacer!r}"
            )
        floor = self.min_length if self.min_length is not None else _MIN_LENGTH
        if not floor <= len(protospacer) <= _MAX_LENGTH:
            raise GuideError(
                f"guide {self.name!r} protospacer length {len(protospacer)} outside "
                f"[{floor}, {_MAX_LENGTH}]"
            )
        object.__setattr__(self, "protospacer", protospacer)

    def __len__(self) -> int:
        return len(self.protospacer)

    @property
    def target_pattern(self) -> str:
        """IUPAC pattern of a perfect on-target site on the + strand."""
        if self.pam.side == "3prime":
            return self.protospacer + self.pam.pattern
        return self.pam.pattern + self.protospacer

    @property
    def site_length(self) -> int:
        """Length of a (bulge-free) genomic site for this guide."""
        return len(self.protospacer) + len(self.pam)

    def pam_positions(self) -> range:
        """Index range of the PAM within the target pattern."""
        if self.pam.side == "3prime":
            return range(len(self.protospacer), self.site_length)
        return range(0, len(self.pam))

    def protospacer_positions(self) -> range:
        """Index range of the protospacer within the target pattern."""
        if self.pam.side == "3prime":
            return range(0, len(self.protospacer))
        return range(len(self.pam), self.site_length)

    def concrete_target(self, rng: np.random.Generator | None = None) -> str:
        """A concrete on-target site: ambiguous PAM symbols resolved.

        With an *rng*, ambiguity codes resolve uniformly at random;
        without, to their alphabetically-first base (deterministic).
        """
        resolved = []
        for symbol in self.target_pattern:
            bases = alphabet.iupac_bases(symbol)
            if len(bases) == 1 or rng is None:
                resolved.append(bases[0])
            else:
                resolved.append(bases[int(rng.integers(0, len(bases)))])
        return "".join(resolved)

    def reverse_complement_pattern(self) -> str:
        """IUPAC pattern a site presents on the − strand (as read on +)."""
        return alphabet.reverse_complement(self.target_pattern)

    def with_pam(self, pam: Pam | str) -> "Guide":
        """Return a copy of this guide targeting a different PAM."""
        return Guide(
            self.name,
            self.protospacer,
            pam if isinstance(pam, Pam) else get_pam(pam),
            min_length=self.min_length,
        )

    @classmethod
    def from_target(
        cls,
        name: str,
        target: str,
        pam: Pam | str = "NGG",
        *,
        min_length: int | None = None,
    ) -> "Guide":
        """Build a guide from a full target site (protospacer + PAM).

        The PAM-length suffix (3' PAMs) or prefix (5' PAMs) is stripped;
        it must satisfy the PAM motif.
        """
        resolved = pam if isinstance(pam, Pam) else get_pam(pam)
        target = target.upper()
        if len(target) <= len(resolved):
            raise GuideError(f"target {target!r} shorter than PAM {resolved.name}")
        if resolved.side == "3prime":
            protospacer, pam_site = target[: -len(resolved)], target[-len(resolved):]
        else:
            pam_site, protospacer = target[: len(resolved)], target[len(resolved):]
        if not resolved.matches(pam_site):
            raise GuideError(
                f"target {target!r} does not end in a valid {resolved.name} PAM "
                f"(found {pam_site!r})"
            )
        return cls(name, protospacer, resolved, min_length=min_length)
