"""Guide libraries: batches of guides searched together.

The paper's workloads stream the genome once past *many* guide automata
simultaneously, so the unit of work is a library, not a single guide.
Libraries can be parsed from the simple whitespace table format the
original tools accept, or sampled from a reference genome (every sample
is a real PAM-adjacent site, so each guide has at least one exact
on-target hit — handy for validation).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator, Sequence as SequenceType, Union

import numpy as np

from .. import alphabet
from ..errors import GuideError
from ..genome.sequence import Sequence
from .guide import Guide
from .pam import Pam, get_pam


@dataclass(frozen=True)
class GuideLibrary:
    """An ordered, uniquely-named collection of guides."""

    guides: tuple[Guide, ...]

    def __post_init__(self) -> None:
        names = [guide.name for guide in self.guides]
        if len(set(names)) != len(names):
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise GuideError(f"duplicate guide names in library: {duplicates}")

    def __len__(self) -> int:
        return len(self.guides)

    def __iter__(self) -> Iterator[Guide]:
        return iter(self.guides)

    def __getitem__(self, index: int) -> Guide:
        return self.guides[index]

    def by_name(self, name: str) -> Guide:
        """Look up a guide by name."""
        for guide in self.guides:
            if guide.name == name:
                return guide
        raise GuideError(f"no guide named {name!r} in library")

    def subset(self, count: int) -> "GuideLibrary":
        """The first *count* guides, as a new library."""
        if not 0 <= count <= len(self.guides):
            raise GuideError(f"cannot take {count} guides from a library of {len(self.guides)}")
        return GuideLibrary(self.guides[:count])

    @classmethod
    def from_guides(cls, guides: SequenceType[Guide]) -> "GuideLibrary":
        return cls(tuple(guides))


def parse_guide_table(source: Union[str, Path, IO[str]], *, pam: Union[Pam, str] = "NGG") -> GuideLibrary:
    """Parse the two-column guide table format: ``name  protospacer``.

    Blank lines and ``#`` comments are skipped. A single-column line is
    accepted too; the guide is then named ``guide<N>`` by position.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii") as handle:
            lines = handle.readlines()
    else:
        lines = list(source)
    resolved = pam if isinstance(pam, Pam) else get_pam(pam)
    guides: list[Guide] = []
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) == 1:
            name, protospacer = f"guide{len(guides) + 1}", fields[0]
        elif len(fields) >= 2:
            name, protospacer = fields[0], fields[1]
        else:  # pragma: no cover - split() never yields zero fields here
            continue
        try:
            guides.append(Guide(name, protospacer, resolved))
        except GuideError as exc:
            raise GuideError(f"line {line_number}: {exc}") from exc
    if not guides:
        raise GuideError("guide table contains no guides")
    return GuideLibrary(tuple(guides))


def sample_guides_from_genome(
    genome: Sequence,
    count: int,
    *,
    pam: Union[Pam, str] = "NGG",
    protospacer_length: int = 20,
    seed: int = 0,
    name_prefix: str = "g",
) -> GuideLibrary:
    """Sample *count* guides whose targets occur verbatim in *genome*.

    Each sample picks a random position, requires a concrete (N-free)
    window with a valid PAM on the + strand, and cuts the guide out of
    it. Raises :class:`GuideError` when the genome is too PAM-poor to
    yield enough guides.
    """
    resolved = pam if isinstance(pam, Pam) else get_pam(pam)
    rng = np.random.default_rng(seed)
    site_length = protospacer_length + len(resolved)
    if len(genome) < site_length:
        raise GuideError("genome shorter than one guide site")
    guides: list[Guide] = []
    seen: set[str] = set()
    attempts = 0
    max_attempts = max(10000, count * 2000)
    while len(guides) < count:
        attempts += 1
        if attempts > max_attempts:
            raise GuideError(
                f"could only sample {len(guides)}/{count} guides after {attempts} attempts"
            )
        position = int(rng.integers(0, len(genome) - site_length + 1))
        window = genome.window(position, site_length)
        if "N" in window:
            continue
        if resolved.side == "3prime":
            protospacer, pam_site = window[:protospacer_length], window[protospacer_length:]
        else:
            pam_site, protospacer = window[: len(resolved)], window[len(resolved):]
        if not resolved.matches(pam_site):
            continue
        if protospacer in seen:
            continue
        seen.add(protospacer)
        guides.append(Guide(f"{name_prefix}{len(guides) + 1:04d}", protospacer, resolved))
    return GuideLibrary(tuple(guides))
