"""``python -m repro`` — the same CLI as the ``repro-offtarget`` script."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
