"""Request scheduling: coalesce concurrent queries into shared passes.

The paper's core economic property is that **one** streaming pass of
the genome serves *all* loaded guide automata simultaneously. This
scheduler is the software analogue for a serving workload: queries
that arrive within a batching window — each carrying its own guides —
are coalesced into one multi-guide search whose single set of genome
passes answers all of them, and the merged hit list is demultiplexed
back into per-request results that are **bit-identical** to running
each request alone (the differential guarantee pinned by
``tests/test_service.py``).

Why demultiplexing is exact
---------------------------
The functional kernel enumerates each guide's hits independently of
every other guide in the batch, and hit identity/dedup keys include
the guide name; coalescing therefore changes *how often the genome is
read*, never *what any one guide matches*. Guides are canonicalised by
content (:func:`~repro.service.cache.cache_key`) so identical
sequences requested by different clients share one automaton and one
scan, and each request's hits are renamed back to its own guide names
before being sorted into the same order a solo
:class:`~repro.core.search.OffTargetSearch` run would produce.

Capacity and admission control
------------------------------
A coalesced batch is pre-flighted against the configured platform
capacity through the same shared rule the spatial engines'
``validate_capacity`` routes through (:mod:`repro.check.automata`):
an over-capacity batch is split greedily into sequential passes, and a
guide that cannot fit the device at all fails *only the requests that
asked for it* with :class:`~repro.errors.CapacityError`. The queue is
bounded — a submit beyond ``max_queue_depth`` is shed with a typed
:class:`~repro.errors.ServiceOverloadedError` — and each admitted
request may carry a deadline; one that expires before dispatch fails
with :class:`~repro.errors.DeadlineExceededError`. An admitted request
is never silently dropped: every future resolves with a result or a
typed error, including on shutdown.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Sequence as SequenceType, Union

from ..core.bitparallel import DEFAULT_KERNEL, validate_kernel
from ..core.compiler import CompiledGuide, CompiledLibrary, SearchBudget
from ..core.parallel import ParallelSearch
from ..errors import (
    CapacityError,
    DeadlineExceededError,
    ServiceError,
    ServiceOverloadedError,
)
from ..grna.guide import Guide
from ..grna.hit import OffTargetHit
from ..grna.library import GuideLibrary
from ..obs import Metrics
from ..platforms.resources import fpga_luts_for
from ..platforms.spec import ApSpec, FpgaSpec
from .cache import CacheKey, CompiledGuideCache, cache_key
from .sessions import SessionRegistry

_request_ids = itertools.count(1)


@dataclass(frozen=True)
class QueryRequest:
    """One client query: a guide set, a budget, and a target session.

    ``deadline`` is an absolute :func:`time.monotonic` timestamp; a
    request still queued past it is failed, not searched.
    """

    guides: tuple[Guide, ...]
    budget: SearchBudget
    session_id: str = "default"
    request_id: str = ""
    deadline: float | None = None

    def __post_init__(self) -> None:
        if not self.guides:
            raise ServiceError("a query needs at least one guide")
        names = [guide.name for guide in self.guides]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ServiceError(f"duplicate guide names in query: {duplicates}")
        if not isinstance(self.budget, SearchBudget):
            raise ServiceError(f"budget must be a SearchBudget, got {self.budget!r}")
        if not self.request_id:
            object.__setattr__(self, "request_id", f"req-{next(_request_ids)}")


@dataclass(frozen=True)
class ServiceResult:
    """One request's demultiplexed outcome."""

    request_id: str
    hits: tuple[OffTargetHit, ...]
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def num_hits(self) -> int:
        return len(self.hits)


@dataclass
class _Pending:
    """Parent-side bookkeeping for one admitted request."""

    request: QueryRequest
    future: "Future[ServiceResult]"
    admitted_at: float


def split_into_passes(
    compiled: SequenceType[CompiledGuide],
    spec: Union[ApSpec, FpgaSpec, None],
    *,
    max_guides_per_pass: int | None = None,
) -> tuple[list[list[CompiledGuide]], list[CompiledGuide]]:
    """Greedily pack *compiled* into capacity-respecting passes.

    Mirrors the shared CAP-rule packing (:mod:`repro.check.automata`):
    guides are indivisible placement units packed in order; a guide
    whose cost exceeds the whole device is returned in the second
    element (*unplaceable*) — no multi-pass schedule can fix it.
    """
    if spec is None:
        capacity = None
        cost_of = lambda stes: 0  # noqa: E731 - trivial cost closure
    elif isinstance(spec, ApSpec):
        capacity = spec.capacity_stes
        cost_of = lambda stes: stes  # noqa: E731
    else:
        capacity = spec.luts
        cost_of = lambda stes: fpga_luts_for(stes, spec)  # noqa: E731
    passes: list[list[CompiledGuide]] = []
    unplaceable: list[CompiledGuide] = []
    current: list[CompiledGuide] = []
    remaining = capacity if capacity is not None else 0
    for compiled_guide in compiled:
        needed = cost_of(compiled_guide.num_stes)
        if capacity is not None and needed > capacity:
            unplaceable.append(compiled_guide)
            continue
        over_capacity = capacity is not None and needed > remaining and current
        over_count = (
            max_guides_per_pass is not None and len(current) >= max_guides_per_pass
        )
        if over_capacity or over_count:
            passes.append(current)
            current = []
            remaining = capacity if capacity is not None else 0
        if capacity is not None:
            remaining -= needed
        current.append(compiled_guide)
    if current:
        passes.append(current)
    return passes, unplaceable


class RequestScheduler:
    """The coalescing batch executor behind :class:`OffTargetService`.

    Deterministic by construction: :meth:`flush` drains and executes
    the current queue synchronously (what the differential tests
    drive); :meth:`start` merely runs the same flush from a background
    thread after a ``batch_window_seconds`` coalescing pause, so timing
    affects *which* requests share a batch, never what any request
    returns.
    """

    def __init__(
        self,
        sessions: SessionRegistry,
        cache: CompiledGuideCache,
        *,
        batch_window_seconds: float = 0.005,
        max_queue_depth: int = 128,
        workers: int = 1,
        chunk_length: int = 1 << 20,
        capacity_spec: Union[ApSpec, FpgaSpec, None] = None,
        max_guides_per_pass: int | None = None,
        metrics: Metrics | None = None,
        kernel: str = DEFAULT_KERNEL,
    ) -> None:
        if batch_window_seconds < 0:
            raise ServiceError(
                f"batch_window_seconds must be >= 0, got {batch_window_seconds!r}"
            )
        if not isinstance(max_queue_depth, int) or max_queue_depth < 1:
            raise ServiceError(
                f"max_queue_depth must be a positive integer, got {max_queue_depth!r}"
            )
        if not isinstance(workers, int) or workers < 1:
            raise ServiceError(
                f"workers must be a positive integer, got {workers!r}"
            )
        if max_guides_per_pass is not None and max_guides_per_pass < 1:
            raise ServiceError(
                f"max_guides_per_pass must be positive or None, got {max_guides_per_pass!r}"
            )
        self._sessions = sessions
        self._cache = cache
        self._batch_window = batch_window_seconds
        self._max_queue_depth = max_queue_depth
        self._workers = workers
        self._chunk_length = chunk_length
        self._capacity_spec = capacity_spec
        self._max_guides_per_pass = max_guides_per_pass
        self._kernel = validate_kernel(kernel)
        self._metrics = metrics if metrics is not None else Metrics()
        self._cond = threading.Condition()
        self._pending: list[_Pending] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._flush_lock = threading.Lock()

    # -- introspection -----------------------------------------------------

    @property
    def metrics(self) -> Metrics:
        return self._metrics

    @property
    def kernel(self) -> str:
        return self._kernel

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._pending)

    @property
    def max_queue_depth(self) -> int:
        return self._max_queue_depth

    @property
    def batch_window_seconds(self) -> float:
        return self._batch_window

    @property
    def stopped(self) -> bool:
        """True once :meth:`stop` has shut the background batcher down."""
        return self._stop.is_set() and self._thread is None

    # -- admission ---------------------------------------------------------

    def submit(self, request: QueryRequest) -> "Future[ServiceResult]":
        """Admit *request*; returns the future its result will resolve.

        Raises :class:`ServiceOverloadedError` when the queue is at
        capacity (the request is shed, not enqueued) and
        :class:`ServiceError` for malformed requests — both *before*
        admission, so an admitted request always resolves.
        """
        if self._stop.is_set() and self._thread is not None:
            raise ServiceError("scheduler is stopped")
        if request.session_id not in self._sessions:
            raise ServiceError(
                f"unknown session {request.session_id!r}; "
                f"registered: {self._sessions.ids()}"
            )
        with self._cond:
            if len(self._pending) >= self._max_queue_depth:
                self._metrics.incr("service.requests.shed")
                raise ServiceOverloadedError(
                    f"service queue at capacity "
                    f"({len(self._pending)}/{self._max_queue_depth} requests); "
                    f"retry later"
                )
            future: "Future[ServiceResult]" = Future()
            self._pending.append(_Pending(request, future, time.monotonic()))
            self._metrics.incr("service.requests.admitted")
            self._metrics.gauge("service.queue_depth", len(self._pending))
            self._cond.notify_all()
        return future

    # -- the coalescing flush ----------------------------------------------

    def flush(self) -> int:
        """Drain the queue: group, dispatch, demultiplex, resolve.

        Returns the number of requests resolved (results and typed
        failures alike). Safe to call concurrently with submits; a
        request admitted mid-flush lands in the next flush.
        """
        with self._cond:
            drained = self._pending
            self._pending = []
            self._metrics.gauge("service.queue_depth", 0)
        if not drained:
            return 0
        with self._flush_lock:
            groups: dict[tuple[str, SearchBudget], list[_Pending]] = {}
            for pending in drained:
                key = (pending.request.session_id, pending.request.budget)
                groups.setdefault(key, []).append(pending)
            for session_id, budget in sorted(
                groups,
                key=lambda k: (k[0], k[1].mismatches, k[1].rna_bulges, k[1].dna_bulges),
            ):
                batch = groups[(session_id, budget)]
                try:
                    self._dispatch_batch(session_id, budget, batch)
                except Exception as error:  # pragma: no cover - defensive
                    for pending in batch:
                        if not pending.future.done():
                            pending.future.set_exception(error)
        return len(drained)

    def _expire(self, pending: _Pending, now: float) -> bool:
        """Fail *pending* if its deadline passed; True when expired."""
        deadline = pending.request.deadline
        if deadline is None or now <= deadline:
            return False
        self._metrics.incr("service.requests.deadline_expired")
        pending.future.set_exception(
            DeadlineExceededError(
                f"request {pending.request.request_id} expired "
                f"{now - deadline:.3f}s before dispatch"
            )
        )
        return True

    def _dispatch_batch(
        self, session_id: str, budget: SearchBudget, batch: list[_Pending]
    ) -> None:
        """Run one coalesced (session, budget) batch and demultiplex."""
        started = time.monotonic()
        live = [p for p in batch if not self._expire(p, started)]
        if not live:
            return
        session = self._sessions.get(session_id)

        # Canonicalise: one compiled artefact per distinct guide content.
        order: list[CacheKey] = []
        compiled_by_key: dict[CacheKey, CompiledGuide] = {}
        for pending in live:
            for guide in pending.request.guides:
                key = cache_key(guide, budget)
                if key not in compiled_by_key:
                    compiled_by_key[key] = self._cache.get(guide, budget)
                    order.append(key)

        # Capacity pre-flight: pack into passes, fail the unplaceable.
        passes, unplaceable = split_into_passes(
            [compiled_by_key[key] for key in order],
            self._capacity_spec,
            max_guides_per_pass=self._max_guides_per_pass,
        )
        failed_keys = self._fail_unplaceable(unplaceable, compiled_by_key, budget, live)

        self._metrics.incr("service.batches")
        self._metrics.incr("service.batch_requests", len(live))
        if len(live) > 1:
            self._metrics.incr("service.coalesced_batches")
        self._metrics.incr("service.batch_guides", len(order))

        # Execute the passes; every pass streams the session once.
        hits_by_name: dict[str, list[OffTargetHit]] = {}
        for pass_guides in passes:
            executor = ParallelSearch(
                [compiled.guide for compiled in pass_guides],
                budget,
                workers=self._workers,
                chunk_length=self._chunk_length,
                kernel=self._kernel,
            )
            self._metrics.incr("service.genome_passes")
            self._metrics.incr("service.pass_guides", len(pass_guides))
            for hit in executor.search_many(session.sequences):
                hits_by_name.setdefault(hit.guide_name, []).append(hit)

        # Demultiplex: rename each request's hits back and sort them
        # into the order a solo OffTargetSearch run produces.
        finished = time.monotonic()
        for pending in live:
            if pending.future.done():
                continue  # failed the capacity pre-flight above
            request = pending.request
            if any(cache_key(g, budget) in failed_keys for g in request.guides):
                continue  # already failed; defensive
            request_hits: list[OffTargetHit] = []
            for guide in request.guides:
                name = compiled_by_key[cache_key(guide, budget)].guide.name
                request_hits.extend(
                    replace(hit, guide_name=guide.name)
                    for hit in hits_by_name.get(name, ())
                )
            result = ServiceResult(
                request_id=request.request_id,
                hits=tuple(sorted(request_hits)),
                stats={
                    "session": session_id,
                    "batch_requests": len(live),
                    "batch_guides": len(order),
                    "passes": len(passes),
                    "queue_seconds": started - pending.admitted_at,
                    "batch_seconds": finished - started,
                },
            )
            self._metrics.incr("service.requests.completed")
            pending.future.set_result(result)

    def _fail_unplaceable(
        self,
        unplaceable: list[CompiledGuide],
        compiled_by_key: dict[CacheKey, CompiledGuide],
        budget: SearchBudget,
        live: list[_Pending],
    ) -> set[CacheKey]:
        """Fail only the requests that asked for an unplaceable guide.

        The error carries the standard per-guide breakdown by routing
        through the same shared capacity rule the spatial engines'
        ``validate_capacity`` uses.
        """
        if not unplaceable:
            return set()
        from ..check.automata import require_capacity

        failed_keys = {
            key
            for key, compiled in compiled_by_key.items()
            if any(compiled is bad for bad in unplaceable)
        }
        assert self._capacity_spec is not None
        for pending in live:
            bad = [
                guide
                for guide in pending.request.guides
                if cache_key(guide, budget) in failed_keys
            ]
            if not bad:
                continue
            self._metrics.incr("service.requests.over_capacity")
            try:
                require_capacity(
                    CompiledLibrary(
                        library=GuideLibrary.from_guides(
                            [compiled_by_key[cache_key(g, budget)].guide for g in bad]
                        ),
                        budget=budget,
                        guides=tuple(
                            compiled_by_key[cache_key(g, budget)] for g in bad
                        ),
                    ),
                    self._capacity_spec,
                )
            except CapacityError as error:
                names = ", ".join(sorted(guide.name for guide in bad))
                pending.future.set_exception(
                    CapacityError(
                        f"request {pending.request.request_id}: guide(s) {names} "
                        f"cannot fit the configured device\n{error}"
                    )
                )
        return failed_keys

    # -- background batching -----------------------------------------------

    def start(self) -> None:
        """Run the batching loop in a daemon thread."""
        if self._thread is not None:
            raise ServiceError("scheduler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-service-batcher", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the loop and drain what remains (nothing is dropped)."""
        self._stop.set()
        with self._cond:
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        self.flush()

    def _loop(self) -> None:
        while not self._stop.is_set():
            with self._cond:
                while not self._pending and not self._stop.is_set():
                    self._cond.wait(timeout=0.1)
            if self._stop.is_set():
                break
            # The coalescing window: let concurrent arrivals pile onto
            # the batch before draining it.
            if self._batch_window:
                time.sleep(self._batch_window)
            self.flush()


def make_requests(
    guides: Union[Guide, Iterable[Guide]],
    budget: SearchBudget,
    *,
    session_id: str = "default",
    request_id: str = "",
    deadline: float | None = None,
) -> QueryRequest:
    """Convenience constructor accepting a bare guide or an iterable."""
    if isinstance(guides, Guide):
        guides = (guides,)
    return QueryRequest(
        guides=tuple(guides),
        budget=budget,
        session_id=session_id,
        request_id=request_id,
        deadline=deadline,
    )
