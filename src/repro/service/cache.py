"""The compiled-guide cache: pay guide compilation once, reuse forever.

The automata-processing trade the paper exploits is *one-time
compilation, cheap repeated streaming*: a guide's automaton is built
once and then consumes any number of reference streams. A serving
layer that recompiles every request throws that economy away, so the
scheduler routes every guide through this LRU cache instead.

Entries are keyed by everything that determines the compiled artefact
— the protospacer, the PAM (pattern **and** side), and the
:class:`~repro.core.compiler.SearchBudget` — and hold a
:class:`~repro.core.compiler.CompiledGuide` under a *canonical* name
derived from the key. Canonical naming is what makes the cache safe to
share across requests: two clients asking for the same sequence under
different display names hit the same entry, and the scheduler renames
hits back per request (:mod:`repro.service.scheduler`).

Hit/miss/eviction tallies and a size gauge are wired into
:class:`repro.obs.Metrics`; the structural invariants (size bound, key
↔ entry coherence, counter coherence) are enforced by the ``SVC*``
rules of :func:`repro.check.check_guide_cache`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Iterator

from ..core.compiler import CompiledGuide, SearchBudget, compile_guide
from ..errors import ServiceError
from ..grna.guide import Guide
from ..grna.pam import Pam
from ..obs import Metrics

#: Everything that determines a compiled artefact, as a hashable key.
CacheKey = tuple[str, str, str, int, int, int]


def cache_key(guide: Guide, budget: SearchBudget) -> CacheKey:
    """The cache key of *guide* under *budget*.

    Deliberately excludes ``guide.name``: the compiled automaton of a
    guide depends only on its sequence content, PAM, and budget, which
    is exactly what lets concurrent requests share one artefact.
    """
    pam: Pam = guide.pam
    return (
        guide.protospacer,
        pam.pattern,
        pam.side,
        budget.mismatches,
        budget.rna_bulges,
        budget.dna_bulges,
    )


def canonical_name(key: CacheKey) -> str:
    """Stable content-derived guide name for a cache key.

    Hits produced under this name are renamed back to each request's
    own guide names during demultiplexing, so the only requirements
    are determinism (same key → same name, across processes) and
    uniqueness (distinct keys → distinct names).
    """
    digest = hashlib.sha256("|".join(map(str, key)).encode("ascii")).hexdigest()
    return f"cg-{digest[:16]}"


class CompiledGuideCache:
    """A bounded, thread-safe LRU of :class:`CompiledGuide` artefacts.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least-recently-used entry is
        evicted when an insertion would exceed it.
    metrics:
        Collector for ``service.cache.{lookups,hits,misses,evictions}``
        counters and the ``service.cache.size`` gauge; the cache keeps
        its own when none is supplied.
    """

    def __init__(self, capacity: int = 256, *, metrics: Metrics | None = None) -> None:
        if not isinstance(capacity, int) or capacity < 1:
            raise ServiceError(
                f"cache capacity must be a positive integer, got {capacity!r}"
            )
        self._capacity = capacity
        self._metrics = metrics if metrics is not None else Metrics()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, CompiledGuide]" = OrderedDict()
        self._lookups = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._adoptions = 0

    # -- introspection -----------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def metrics(self) -> Metrics:
        return self._metrics

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list[CacheKey]:
        """Current keys, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    def items(self) -> Iterator[tuple[CacheKey, CompiledGuide]]:
        """Snapshot of (key, entry) pairs, LRU order (for the checker)."""
        with self._lock:
            pairs = list(self._entries.items())
        return iter(pairs)

    def stats(self) -> dict[str, float]:
        """Counter/occupancy summary (what ``--stats-json`` reports)."""
        with self._lock:
            lookups = self._lookups
            return {
                "size": len(self._entries),
                "capacity": self._capacity,
                "lookups": lookups,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "adoptions": self._adoptions,
                "hit_rate": self._hits / lookups if lookups else 0.0,
            }

    # -- the cache operation -----------------------------------------------

    def get(self, guide: Guide, budget: SearchBudget) -> CompiledGuide:
        """The compiled artefact for (*guide*, *budget*), cached.

        On a miss the guide is compiled under its canonical name and
        inserted, evicting the least-recently-used entry when the cache
        is full. The returned :class:`CompiledGuide` always carries the
        canonical name, never ``guide.name``.
        """
        key = cache_key(guide, budget)
        with self._lock:
            self._lookups += 1
            entry = self._entries.get(key)
            if entry is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                self._metrics.incr("service.cache.lookups")
                self._metrics.incr("service.cache.hits")
                return entry
            self._misses += 1
            self._metrics.incr("service.cache.lookups")
            self._metrics.incr("service.cache.misses")
        # Compile outside the lock: compilation is the expensive part,
        # and a concurrent identical miss merely compiles the same
        # deterministic artefact twice (the second insert wins).
        compiled = compile_guide(
            Guide(
                canonical_name(key),
                guide.protospacer,
                guide.pam,
                min_length=guide.min_length,
            ),
            budget,
        )
        with self._lock:
            self._entries[key] = compiled
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                self._metrics.incr("service.cache.evictions")
            self._metrics.gauge("service.cache.size", len(self._entries))
        return compiled

    def peek(self, guide: Guide, budget: SearchBudget) -> CompiledGuide | None:
        """The cached artefact for (*guide*, *budget*), or ``None``.

        Never compiles and moves no counters — this is the cluster
        tier's export probe (``cache_export`` op), which must not
        perturb the hit/miss accounting the SVC003 rule audits.
        """
        with self._lock:
            return self._entries.get(cache_key(guide, budget))

    def adopt(self, compiled: CompiledGuide) -> CacheKey:
        """Insert a peer-compiled artefact (cache-warmup forwarding).

        The artefact must already carry its canonical name — the same
        key ↔ entry coherence SVC002 enforces — so a corrupted or
        mislabeled transfer is refused instead of silently
        demultiplexing one guide's hits under another's name. Counted
        under ``adoptions`` (not ``misses``): SVC003's eviction bound
        is ``evictions <= misses + adoptions``.
        """
        key = cache_key(compiled.guide, compiled.budget)
        expected = canonical_name(key)
        if compiled.guide.name != expected:
            raise ServiceError(
                f"refusing to adopt artefact named {compiled.guide.name!r}; "
                f"its content canonicalises to {expected!r}"
            )
        with self._lock:
            self._adoptions += 1
            self._metrics.incr("service.cache.adoptions")
            if key in self._entries:
                self._entries.move_to_end(key)
                return key
            self._entries[key] = compiled
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                self._metrics.incr("service.cache.evictions")
            self._metrics.gauge("service.cache.size", len(self._entries))
        return key

    def clear(self) -> None:
        """Drop every entry (counters are preserved; they are history)."""
        with self._lock:
            self._entries.clear()
            self._metrics.gauge("service.cache.size", 0)

    # -- verification hook ---------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Raw counter values for the ``SVC`` invariant checker."""
        with self._lock:
            return {
                "lookups": self._lookups,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "adoptions": self._adoptions,
            }
