"""Retrying JSON-lines client for :class:`OffTargetServer`.

Speaks the one-object-per-line protocol of
:mod:`repro.service.server` over a local TCP socket and maps wire
error kinds back onto the typed exception hierarchy, so callers handle
a remote overload exactly like an in-process one::

    from repro.service import RetryPolicy, ServiceClient

    with ServiceClient(port=port, retry=RetryPolicy()) as client:
        result = client.query(guides, SearchBudget(mismatches=3))
        print(client.stats()["cache"]["hit_rate"])

Failure handling is split into two classes:

* **transport failures** (:class:`~repro.errors.ServiceTransportError`
  — refused/reset/closed connections, timeouts, truncated response
  lines) leave the request's fate unknown and are the *retryable*
  class: under a :class:`RetryPolicy` the client reconnects and
  resends after capped exponential backoff with seeded jitter.
  Retried queries carry a client-generated request id, which the
  server deduplicates — a retry can therefore never double-execute or
  double-count a search.
* **typed service answers** (``bad_request`` / ``deadline`` /
  ``capacity`` / ``internal``) are final and re-raised as their typed
  exceptions. ``overloaded`` is the one configurable middle ground:
  the request was shed *before* execution, so
  ``RetryPolicy.retry_overloaded`` (default True) backs off and tries
  again.
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import time
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Union

import numpy as np

from ..core.compiler import SearchBudget
from ..errors import (
    CapacityError,
    DeadlineExceededError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTransportError,
)
from ..grna.guide import Guide
from ..obs import Metrics
from .chaos import ChaosPlan
from .scheduler import ServiceResult
from .server import guide_to_wire, hit_from_wire

_ERROR_TYPES: dict[str, type[ServiceError]] = {
    "overloaded": ServiceOverloadedError,
    "deadline": DeadlineExceededError,
}


def _raise_wire_error(kind: str, detail: str) -> None:
    if kind == "capacity":
        raise CapacityError(detail)
    raise _ERROR_TYPES.get(kind, ServiceError)(detail)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with seeded jitter.

    Retry *attempt* ``n`` (1-based) sleeps a uniformly jittered
    duration in ``[d * (1 - jitter_fraction), d]`` where
    ``d = min(max_delay_seconds, base_delay_seconds * multiplier**(n-1))``.
    Jitter draws come from a generator seeded with ``seed`` (the
    repository's seeded-randomness rule, L002), so a retry schedule is
    reproducible.

    Only safe failure classes are retried: transport failures always
    (the server's request-id deduplication makes a resend idempotent),
    ``overloaded`` sheds only when ``retry_overloaded`` is set, and
    every other typed answer — ``deadline``, ``capacity``,
    ``bad_request``, ``internal`` — never.

    ``deadline_seconds`` bounds the *whole* retry schedule: measured
    from the first attempt, the total time spent (attempts plus
    backoff sleeps) never exceeds it. Each backoff is clamped to the
    remaining budget and an exhausted budget raises
    :class:`~repro.errors.DeadlineExceededError` instead of sleeping
    past the caller's horizon — without it, ``max_attempts`` capped
    exponential backoff could keep a caller waiting long after the
    deadline it asked the *server* to respect. A query/design
    ``timeout_seconds`` imposes the same horizon implicitly.
    """

    max_attempts: int = 4
    base_delay_seconds: float = 0.02
    max_delay_seconds: float = 1.0
    multiplier: float = 2.0
    jitter_fraction: float = 0.5
    seed: int = 0
    retry_overloaded: bool = True
    deadline_seconds: float | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise ServiceError(
                f"max_attempts must be a positive integer, got {self.max_attempts!r}"
            )
        if self.base_delay_seconds < 0 or self.max_delay_seconds < 0:
            raise ServiceError("retry delays must be >= 0")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ServiceError(
                f"deadline_seconds must be positive when set, "
                f"got {self.deadline_seconds!r}"
            )
        if self.multiplier < 1.0:
            raise ServiceError(f"multiplier must be >= 1, got {self.multiplier!r}")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ServiceError(
                f"jitter_fraction must be within [0, 1], got {self.jitter_fraction!r}"
            )

    def is_retryable(self, error: Exception) -> bool:
        """Whether *error* belongs to a safe-to-retry failure class."""
        if isinstance(error, ServiceTransportError):
            return True
        if isinstance(error, ServiceOverloadedError):
            return self.retry_overloaded
        return False

    def delay_seconds(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff before retry *attempt* (1 = first retry)."""
        ceiling = min(
            self.max_delay_seconds,
            self.base_delay_seconds * self.multiplier ** max(0, attempt - 1),
        )
        if not self.jitter_fraction:
            return ceiling
        spread = ceiling * self.jitter_fraction
        return ceiling - spread + spread * float(rng.random())


class ServiceClient:
    """One connection to a running off-target service.

    Parameters
    ----------
    retry:
        Optional :class:`RetryPolicy`. When set, transport failures
        (and, by default, overload sheds) are retried with backoff;
        queries without an explicit ``request_id`` are stamped with a
        client-unique id so the server can deduplicate the retries.
    chaos:
        Optional :class:`~repro.service.chaos.ChaosPlan` consulted at
        the send site — sabotages send attempts for the differential
        chaos suite.
    chaos_site:
        Which plan site the send consults; ``client.send`` by
        default. The router tier passes ``router.send`` so its
        backend hops draw from their own seeded stream.
    metrics:
        Collector for ``service.client.*`` counters (attempts,
        retries, transport errors, disconnects); the client keeps its
        own when none is supplied.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout_seconds: float = 60.0,
        retry: RetryPolicy | None = None,
        chaos: ChaosPlan | None = None,
        chaos_site: str = "client.send",
        metrics: Metrics | None = None,
    ) -> None:
        if port < 1:
            raise ServiceError(f"client needs the server's port, got {port!r}")
        self._address = (host, port)
        self._timeout = timeout_seconds
        self._retry = retry
        self._chaos = chaos
        self._chaos_site = chaos_site
        self._metrics = metrics if metrics is not None else Metrics()
        self._rng = np.random.default_rng(retry.seed if retry is not None else 0)
        self._socket: socket.socket | None = None
        self._buffer = bytearray()
        self._id_token = f"{os.getpid():x}-{id(self):x}"
        self._id_counter: Iterator[int] = itertools.count(1)

    @property
    def metrics(self) -> Metrics:
        return self._metrics

    # -- lifecycle ---------------------------------------------------------

    def connect(self) -> "ServiceClient":
        """Open the connection (idempotent)."""
        if self._socket is None:
            try:
                self._socket = socket.create_connection(
                    self._address, timeout=self._timeout
                )
            except OSError as error:
                raise ServiceTransportError(
                    f"cannot connect to service at "
                    f"{self._address[0]}:{self._address[1]}: {error}"
                ) from error
            # Short socket timeout so reads poll the roundtrip deadline.
            self._socket.settimeout(min(0.5, self._timeout))
            self._buffer.clear()
        return self

    def close(self) -> None:
        if self._socket is not None:
            try:
                self._socket.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._socket = None
        self._buffer.clear()

    def _teardown(self) -> None:
        """Drop a connection whose stream state is no longer trustworthy."""
        self._metrics.incr("service.client.disconnects")
        self.close()

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- protocol ----------------------------------------------------------

    def roundtrip(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request object, return the (``ok``) response object.

        Wire failures raise the matching typed exception
        (:class:`ServiceOverloadedError`, :class:`DeadlineExceededError`,
        :class:`~repro.errors.CapacityError`,
        :class:`~repro.errors.ServiceTransportError`,
        :class:`ServiceError`). Under a :class:`RetryPolicy`, safe
        failure classes are retried — an executing op (``query`` /
        ``design``) only when it carries an ``id`` (otherwise a resend
        could double-execute).
        """
        policy = self._retry
        safe_to_resend = payload.get("op", "query") not in (
            "query",
            "design",
        ) or bool(payload.get("id"))
        deadline = self._retry_horizon(payload)
        attempt = 0
        while True:
            attempt += 1
            self._metrics.incr("service.client.attempts")
            try:
                return self._attempt(payload)
            except ServiceError as error:
                if isinstance(error, ServiceTransportError):
                    self._metrics.incr("service.client.transport_errors")
                    self._teardown()
                if (
                    policy is None
                    or not safe_to_resend
                    or attempt >= policy.max_attempts
                    or not policy.is_retryable(error)
                ):
                    raise
                delay = policy.delay_seconds(attempt, self._rng)
                if deadline is not None:
                    # The deadline budget bounds the whole schedule:
                    # never sleep past the horizon, and give up typed
                    # once it is spent instead of burning attempts.
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._metrics.incr("service.client.deadline_exhausted")
                        raise DeadlineExceededError(
                            f"retry budget exhausted after {attempt} "
                            f"attempt(s); last failure: {error}"
                        ) from error
                    delay = min(delay, remaining)
                self._metrics.incr("service.client.retries")
                if delay > 0:
                    time.sleep(delay)

    def _retry_horizon(self, payload: dict[str, Any]) -> float | None:
        """Absolute monotonic deadline for this roundtrip's retries.

        The tighter of the policy's ``deadline_seconds`` and the
        request's own ``timeout`` field — a caller that bounded the
        server-side dispatch has bounded its own patience too.
        """
        horizons: list[float] = []
        policy = self._retry
        if policy is not None and policy.deadline_seconds is not None:
            horizons.append(policy.deadline_seconds)
        raw_timeout = payload.get("timeout")
        if isinstance(raw_timeout, (int, float)):
            horizons.append(float(raw_timeout))
        if not horizons:
            return None
        return time.monotonic() + min(horizons)

    def exchange(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One request/response exchange; typed refusals come back as data.

        Unlike :meth:`roundtrip`, an ``ok: false`` response is
        *returned*, not raised — the router tier needs the backend's
        verdict verbatim so it can forward it to its own client.
        Transport failures (the request's fate is unknown, which is a
        different thing from a typed refusal) still raise
        :class:`~repro.errors.ServiceTransportError`. No retries.
        """
        self.connect()
        data = json.dumps(payload).encode("ascii") + b"\n"
        self._send(data)
        line = self._read_line()
        try:
            response = json.loads(line)
        except ValueError as error:
            raise ServiceTransportError(
                f"unparseable response line: {error}"
            ) from error
        if not isinstance(response, dict):
            raise ServiceTransportError(f"malformed response: {response!r}")
        return response

    def _attempt(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One request/response exchange, no retries; refusals raise."""
        response = self.exchange(payload)
        if not response.get("ok"):
            _raise_wire_error(
                str(response.get("error", "internal")),
                str(response.get("detail", "service error")),
            )
        return response

    def _send(self, data: bytes) -> None:
        """Write one request line — the client-side chaos site.

        Sabotage actions corrupt the attempt (drop, truncate, garbage,
        oversize, vanish-after-send) and raise
        :class:`ServiceTransportError` so the retry loop reconnects
        and resends; ``slow_send`` dribbles the line out slowly but
        completes it.
        """
        connection = self._socket
        assert connection is not None
        chaos = self._chaos
        action = chaos.draw(self._chaos_site) if chaos is not None else None
        try:
            if action is None:
                connection.sendall(data)
                return
            assert chaos is not None
            if action == "slow_send":
                step = chaos.slow_chunk_bytes
                for offset in range(0, len(data), step):
                    connection.sendall(data[offset : offset + step])
                    time.sleep(chaos.slow_pause_seconds)
                return
            self._metrics.incr("service.client.chaos_injected")
            if action == "truncate_send":
                connection.sendall(data[: max(1, len(data) // 2)])
            elif action == "garbage_line":
                connection.sendall(chaos.garbage_line())
            elif action == "oversize_line":
                connection.sendall(chaos.oversize_line())
            elif action == "disconnect_after_send":
                connection.sendall(data)
        except OSError as error:
            self._teardown()
            raise ServiceTransportError(
                f"service connection failed: {error}"
            ) from error
        self._teardown()
        raise ServiceTransportError(f"chaos: {action.replace('_', ' ')}")

    def _read_line(self) -> bytes:
        """Read one newline-terminated response line (own buffering).

        A buffered ``makefile().readline`` can discard partial data on
        a socket timeout; owning the buffer keeps slow (chaotic)
        server writes reassembling correctly and turns every
        connection-level failure into a typed
        :class:`ServiceTransportError`.
        """
        connection = self._socket
        assert connection is not None
        deadline = time.monotonic() + self._timeout
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[: newline + 1])
                del self._buffer[: newline + 1]
                return line
            if time.monotonic() > deadline:
                raise ServiceTransportError(
                    f"timed out after {self._timeout:g}s waiting for a response"
                )
            try:
                chunk = connection.recv(1 << 16)
            except socket.timeout:
                continue
            except OSError as error:
                raise ServiceTransportError(
                    f"service connection failed: {error}"
                ) from error
            if not chunk:
                raise ServiceTransportError(
                    "service closed the connection"
                    + (" mid-line" if self._buffer else "")
                )
            self._buffer.extend(chunk)

    # -- ops ---------------------------------------------------------------

    def ping(self) -> bool:
        """Liveness check."""
        return self.roundtrip({"op": "ping"}).get("op") == "pong"

    def query(
        self,
        guides: Union[Guide, Iterable[Guide]],
        budget: SearchBudget,
        *,
        session_id: str = "default",
        request_id: str = "",
        timeout_seconds: float | None = None,
    ) -> ServiceResult:
        """Run one query through the service; hits come back typed.

        Under a :class:`RetryPolicy`, a query without an explicit
        ``request_id`` is stamped with a client-unique one so the
        server can recognise (and deduplicate) retried sends.
        """
        if isinstance(guides, Guide):
            guides = (guides,)
        if not request_id and self._retry is not None:
            request_id = f"q-{self._id_token}-{next(self._id_counter)}"
        payload: dict[str, Any] = {
            "op": "query",
            "guides": [guide_to_wire(guide) for guide in guides],
            "budget": {
                "mismatches": budget.mismatches,
                "rna_bulges": budget.rna_bulges,
                "dna_bulges": budget.dna_bulges,
            },
            "session": session_id,
        }
        if request_id:
            payload["id"] = request_id
        if timeout_seconds is not None:
            payload["timeout"] = timeout_seconds
        response = self.roundtrip(payload)
        return ServiceResult(
            request_id=str(response.get("id", request_id)),
            hits=tuple(hit_from_wire(raw) for raw in response.get("hits", [])),
            stats=dict(response.get("stats", {})),
        )

    def design(
        self,
        region: str,
        *,
        region_name: str = "region",
        pam: str = "NGG",
        guide_length: int = 20,
        budget: SearchBudget | None = None,
        weights: dict[str, Any] | None = None,
        session_id: str = "default",
        request_id: str = "",
        timeout_seconds: float | None = None,
        include_hits: bool = True,
    ) -> dict[str, Any]:
        """Run one design request; returns the ranked report document.

        *region* is the raw target sequence text. Like :meth:`query`,
        a request without an explicit ``request_id`` is stamped with a
        client-unique one under a :class:`RetryPolicy`, so retried
        sends deduplicate server-side instead of re-running the
        pipeline.
        """
        if not request_id and self._retry is not None:
            request_id = f"d-{self._id_token}-{next(self._id_counter)}"
        resolved = budget if budget is not None else SearchBudget()
        payload: dict[str, Any] = {
            "op": "design",
            "region": region,
            "region_name": region_name,
            "pam": pam,
            "guide_length": guide_length,
            "budget": {
                "mismatches": resolved.mismatches,
                "rna_bulges": resolved.rna_bulges,
                "dna_bulges": resolved.dna_bulges,
            },
            "session": session_id,
            "include_hits": include_hits,
        }
        if weights is not None:
            payload["weights"] = weights
        if request_id:
            payload["id"] = request_id
        if timeout_seconds is not None:
            payload["timeout"] = timeout_seconds
        response = self.roundtrip(payload)
        return dict(response.get("report", {}))

    def register_genome(
        self,
        session_id: str,
        sequences: Iterable[tuple[str, str]],
    ) -> bool:
        """Register (or re-confirm) a genome session over the wire.

        *sequences* are ``(name, text)`` pairs. The op is idempotent:
        a session that already exists is left untouched and answered
        with ``created: false``, so re-registering after a backend
        restart (or a retried send) is always safe. Returns whether
        this call created the session.
        """
        payload = {
            "op": "register",
            "session": session_id,
            "sequences": [
                {"name": name, "text": text} for name, text in sequences
            ],
        }
        return bool(self.roundtrip(payload).get("created"))

    def cache_export(self, guide: Guide, budget: SearchBudget) -> str | None:
        """This backend's pickled artefact for (*guide*, *budget*), if cached.

        Returns the base64 payload the ``cache_adopt`` op accepts, or
        ``None`` on a cache miss — the probe never compiles and moves
        no cache counters (the router's warmup-forwarding source).
        """
        response = self.roundtrip(
            {
                "op": "cache_export",
                "guide": guide_to_wire(guide),
                "budget": {
                    "mismatches": budget.mismatches,
                    "rna_bulges": budget.rna_bulges,
                    "dna_bulges": budget.dna_bulges,
                },
            }
        )
        artefact = response.get("artefact")
        if not response.get("found") or not isinstance(artefact, str):
            return None
        return artefact

    def cache_adopt(self, artefact: str) -> str:
        """Hand a peer-exported artefact to this backend's cache.

        Returns the canonical cache-entry name the backend adopted it
        under; a corrupted or mislabeled artefact is refused with
        ``bad_request``.
        """
        response = self.roundtrip({"op": "cache_adopt", "artefact": artefact})
        return str(response.get("key", ""))

    def stats(self) -> dict[str, Any]:
        """The service's metrics payload (see ``OffTargetService.stats``)."""
        return dict(self.roundtrip({"op": "stats"})["stats"])

    def health(self) -> dict[str, Any]:
        """The server's readiness/liveness payload (the ``health`` op)."""
        return dict(self.roundtrip({"op": "health"})["health"])

    def drain(self) -> bool:
        """Ask the server to drain gracefully (it acknowledges first)."""
        return self.roundtrip({"op": "drain"}).get("op") == "draining"

    def shutdown(self) -> None:
        """Ask the server to stop (it acknowledges first)."""
        self.roundtrip({"op": "shutdown"})
