"""Blocking JSON-lines client for :class:`OffTargetServer`.

Speaks the one-object-per-line protocol of
:mod:`repro.service.server` over a local TCP socket and maps wire
error kinds back onto the typed exception hierarchy, so callers handle
a remote overload exactly like an in-process one::

    from repro.service import ServiceClient

    with ServiceClient(port=port) as client:
        result = client.query(guides, SearchBudget(mismatches=3))
        print(client.stats()["cache"]["hit_rate"])
"""

from __future__ import annotations

import json
import socket
from typing import Any, BinaryIO, Iterable, Union

from ..core.compiler import SearchBudget
from ..errors import (
    CapacityError,
    DeadlineExceededError,
    ServiceError,
    ServiceOverloadedError,
)
from ..grna.guide import Guide
from .scheduler import ServiceResult
from .server import guide_to_wire, hit_from_wire

_ERROR_TYPES: dict[str, type[ServiceError]] = {
    "overloaded": ServiceOverloadedError,
    "deadline": DeadlineExceededError,
}


def _raise_wire_error(kind: str, detail: str) -> None:
    if kind == "capacity":
        raise CapacityError(detail)
    raise _ERROR_TYPES.get(kind, ServiceError)(detail)


class ServiceClient:
    """One connection to a running off-target service."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout_seconds: float = 60.0,
    ) -> None:
        if port < 1:
            raise ServiceError(f"client needs the server's port, got {port!r}")
        self._address = (host, port)
        self._timeout = timeout_seconds
        self._socket: socket.socket | None = None
        self._reader: BinaryIO | None = None

    # -- lifecycle ---------------------------------------------------------

    def connect(self) -> "ServiceClient":
        """Open the connection (idempotent)."""
        if self._socket is None:
            try:
                self._socket = socket.create_connection(
                    self._address, timeout=self._timeout
                )
            except OSError as error:
                raise ServiceError(
                    f"cannot connect to service at "
                    f"{self._address[0]}:{self._address[1]}: {error}"
                ) from error
            self._reader = self._socket.makefile("rb")
        return self

    def close(self) -> None:
        if self._reader is not None:
            self._reader.close()
            self._reader = None
        if self._socket is not None:
            self._socket.close()
            self._socket = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- protocol ----------------------------------------------------------

    def roundtrip(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request object, return the (``ok``) response object.

        Wire failures raise the matching typed exception
        (:class:`ServiceOverloadedError`, :class:`DeadlineExceededError`,
        :class:`~repro.errors.CapacityError`, :class:`ServiceError`).
        """
        self.connect()
        assert self._socket is not None and self._reader is not None
        try:
            self._socket.sendall(json.dumps(payload).encode("ascii") + b"\n")
            line = self._reader.readline()
        except OSError as error:
            raise ServiceError(f"service connection failed: {error}") from error
        if not line:
            raise ServiceError("service closed the connection")
        response = json.loads(line)
        if not isinstance(response, dict):
            raise ServiceError(f"malformed response: {response!r}")
        if not response.get("ok"):
            _raise_wire_error(
                str(response.get("error", "internal")),
                str(response.get("detail", "service error")),
            )
        return response

    # -- ops ---------------------------------------------------------------

    def ping(self) -> bool:
        """Liveness check."""
        return self.roundtrip({"op": "ping"}).get("op") == "pong"

    def query(
        self,
        guides: Union[Guide, Iterable[Guide]],
        budget: SearchBudget,
        *,
        session_id: str = "default",
        request_id: str = "",
        timeout_seconds: float | None = None,
    ) -> ServiceResult:
        """Run one query through the service; hits come back typed."""
        if isinstance(guides, Guide):
            guides = (guides,)
        payload: dict[str, Any] = {
            "op": "query",
            "guides": [guide_to_wire(guide) for guide in guides],
            "budget": {
                "mismatches": budget.mismatches,
                "rna_bulges": budget.rna_bulges,
                "dna_bulges": budget.dna_bulges,
            },
            "session": session_id,
        }
        if request_id:
            payload["id"] = request_id
        if timeout_seconds is not None:
            payload["timeout"] = timeout_seconds
        response = self.roundtrip(payload)
        return ServiceResult(
            request_id=str(response.get("id", request_id)),
            hits=tuple(hit_from_wire(raw) for raw in response.get("hits", [])),
            stats=dict(response.get("stats", {})),
        )

    def stats(self) -> dict[str, Any]:
        """The service's metrics payload (see ``OffTargetService.stats``)."""
        return dict(self.roundtrip({"op": "stats"})["stats"])

    def shutdown(self) -> None:
        """Ask the server to stop (it acknowledges first)."""
        self.roundtrip({"op": "shutdown"})
