"""Genome sessions: load and parse a reference once, search it many times.

The serving layer's second amortisation axis (next to the compiled
:mod:`~repro.service.cache`): FASTA parsing and sequence encoding cost
seconds at genome scale, so a reference is registered once as a
*session* and every subsequent request names the session instead of
re-shipping or re-reading the reference. This mirrors how the paper's
platforms hold the symbol stream constant while swapping automata in
and out.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Union

from ..errors import ServiceError
from ..genome.fasta import read_fasta
from ..genome.sequence import Sequence
from ..obs import Metrics


@dataclass(frozen=True)
class GenomeSession:
    """One loaded reference: an id, its sequences, and provenance."""

    session_id: str
    sequences: tuple[Sequence, ...]
    source: str = "<memory>"

    def __post_init__(self) -> None:
        if not self.session_id:
            raise ServiceError("session id must be non-empty")
        if not self.sequences:
            raise ServiceError(f"session {self.session_id!r} has no sequences")

    @property
    def total_length(self) -> int:
        """Total reference length in bp."""
        return sum(len(sequence) for sequence in self.sequences)

    def describe(self) -> dict[str, object]:
        """JSON-friendly summary for ``--stats-json`` / the stats op."""
        return {
            "session": self.session_id,
            "source": self.source,
            "sequences": [sequence.name for sequence in self.sequences],
            "total_length": self.total_length,
        }


class SessionRegistry:
    """Thread-safe id → :class:`GenomeSession` store with reuse counters.

    ``service.sessions.loaded`` / ``.bytes_loaded`` count the one-time
    loading work; ``service.sessions.reuses`` counts every request that
    was served without re-reading a reference — the registry's whole
    point.
    """

    def __init__(self, *, metrics: Metrics | None = None) -> None:
        self._metrics = metrics if metrics is not None else Metrics()
        self._lock = threading.Lock()
        self._sessions: dict[str, GenomeSession] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._sessions

    def ids(self) -> list[str]:
        with self._lock:
            return sorted(self._sessions)

    def _register(self, session: GenomeSession) -> GenomeSession:
        with self._lock:
            if session.session_id in self._sessions:
                raise ServiceError(
                    f"session {session.session_id!r} is already registered"
                )
            self._sessions[session.session_id] = session
            self._metrics.incr("service.sessions.loaded")
            self._metrics.incr("service.sessions.bytes_loaded", session.total_length)
            self._metrics.gauge("service.sessions.count", len(self._sessions))
        return session

    def add_sequences(
        self, session_id: str, sequences: Union[Sequence, Iterable[Sequence]]
    ) -> GenomeSession:
        """Register in-memory sequences under *session_id*."""
        if isinstance(sequences, Sequence):
            sequences = (sequences,)
        return self._register(
            GenomeSession(session_id, tuple(sequences), source="<memory>")
        )

    def add_fasta(self, session_id: str, path: Union[str, Path]) -> GenomeSession:
        """Read *path* once and register its records under *session_id*."""
        records = read_fasta(path)
        if not records:
            raise ServiceError(f"FASTA {path} contains no records")
        return self._register(
            GenomeSession(
                session_id,
                tuple(record.sequence for record in records),
                source=str(path),
            )
        )

    def get(self, session_id: str) -> GenomeSession:
        """The session for *session_id*; counts the reuse."""
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                known = sorted(self._sessions)
                raise ServiceError(
                    f"unknown session {session_id!r}; registered: {known}"
                )
            self._metrics.incr("service.sessions.reuses")
            return session

    def remove(self, session_id: str) -> None:
        """Drop a session (its sequences become collectable)."""
        with self._lock:
            if self._sessions.pop(session_id, None) is None:
                raise ServiceError(f"unknown session {session_id!r}")
            self._metrics.gauge("service.sessions.count", len(self._sessions))

    def describe(self) -> list[dict[str, object]]:
        """Summaries of every registered session, id order."""
        with self._lock:
            sessions = sorted(self._sessions.values(), key=lambda s: s.session_id)
        return [session.describe() for session in sessions]
