"""The batch-serving layer: persistent, coalescing off-target search.

Every ``repro-offtarget search`` invocation recompiles its guides and
rescans the genome. This package is the ROADMAP's path past that: a
persistent service that loads a reference **once**
(:mod:`~repro.service.sessions`), compiles each distinct guide **once**
(:mod:`~repro.service.cache`), and coalesces concurrently arriving
requests into shared genome passes
(:mod:`~repro.service.scheduler`) — the software analogue of the
paper's many-automata-one-stream execution. The front end is an
in-process API (:class:`OffTargetService`) plus a JSON-lines socket
server/client pair (:mod:`~repro.service.server`,
:mod:`~repro.service.client`) behind the ``repro-offtarget serve`` /
``query`` subcommands.
"""

from .api import OffTargetService
from .cache import CompiledGuideCache, cache_key, canonical_name
from .chaos import ChaosPlan, open_flood
from .client import RetryPolicy, ServiceClient
from .scheduler import (
    QueryRequest,
    RequestScheduler,
    ServiceResult,
    split_into_passes,
)
from .server import OffTargetServer
from .sessions import GenomeSession, SessionRegistry

__all__ = [
    "ChaosPlan",
    "CompiledGuideCache",
    "GenomeSession",
    "OffTargetServer",
    "OffTargetService",
    "QueryRequest",
    "RequestScheduler",
    "RetryPolicy",
    "ServiceClient",
    "ServiceResult",
    "SessionRegistry",
    "cache_key",
    "canonical_name",
    "open_flood",
    "split_into_passes",
]
