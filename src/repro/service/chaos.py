"""Deterministic chaos engineering for the serving stack's socket edge.

The process-pool layer proved the discipline in PR 2: a seeded,
injectable :class:`~repro.core.parallel.FaultPlan` lets the fault
suite pin recovery behaviour bit-identically to the oracle. This
module is the same idea one layer out, at the network edge, where the
adversary is a hostile or unlucky *peer* rather than a dying worker:
mid-line disconnects, partial and slow writes (slowloris), garbage and
oversized lines, and connection floods.

A :class:`ChaosPlan` is consulted from five injection sites —
``client.send`` inside :class:`~repro.service.client.ServiceClient`,
``server.write`` inside
:class:`~repro.service.server.OffTargetServer`, and, since the
sharded-cluster PR, the cross-node sites: ``router.send`` (the
router → backend hop, same sabotage shapes as a client),
``probe.send`` (membership health probes, which a blackhole makes
fail without touching the backend), and ``backend.serve`` (the
cross-node harness's backend-crash schedule) — and answers "what, if
anything, goes wrong with this wire event?". Two modes:

* **seeded** — every site gets its own seeded numpy generator stream
  (derived from ``seed`` and the site name), so a single-client
  sequential workload replays the identical fault schedule for the
  same seed. This drives the differential sweep in
  ``tests/test_chaos.py``.
* **scripted** — an explicit per-site action sequence, for targeted
  regressions ("the response write is dropped exactly once").

Actions injected on the *client* side sabotage the current attempt and
surface as :class:`~repro.errors.ServiceTransportError`, which the
client's :class:`~repro.service.client.RetryPolicy` classifies as
retryable; actions on the *server* side corrupt or drop a response
that was already computed, which is recoverable only because the
server deduplicates retried request ids. All randomness is seeded
(numpy ``default_rng``; the L002 lint rule forbids stdlib ``random``
here), so a plan is a reproducible adversary, never a flaky test.
"""

from __future__ import annotations

import socket
import threading
import zlib
from typing import Iterator, Mapping, Sequence

import numpy as np

from ..errors import ServiceError

#: Client-side sabotage: each corrupts one send attempt.
CLIENT_ACTIONS = (
    "disconnect_before_send",  # drop the connection instead of sending
    "truncate_send",  # send a prefix of the line, then disconnect
    "garbage_line",  # send seeded garbage bytes, then disconnect
    "oversize_line",  # send one line past the server's limit
    "disconnect_after_send",  # full send, then vanish before the reply
    "slow_send",  # slowloris: dribble the line out, but complete it
)

#: Server-side degradation of an already-computed response.
SERVER_ACTIONS = (
    "drop_before_write",  # close without answering
    "truncate_write",  # send a partial response line, then close
    "slow_write",  # dribble the response out, but complete it
)

#: Membership-probe sabotage: the backend is alive but unreachable.
PROBE_ACTIONS = (
    "blackhole_probe",  # the probe gets no answer (counts as a failure)
)

#: Cluster-level backend faults, drawn by the cross-node harness.
BACKEND_ACTIONS = (
    "kill_mid_batch",  # crash one backend while a batch executes
)

#: Injection sites and the actions each may draw. ``router.send`` is
#: the router → backend hop (same transport sabotage shapes as a
#: client), ``probe.send`` the membership health probe, and
#: ``backend.serve`` the cross-node harness's crash schedule.
SITE_ACTIONS: Mapping[str, tuple[str, ...]] = {
    "client.send": CLIENT_ACTIONS,
    "server.write": SERVER_ACTIONS,
    "router.send": CLIENT_ACTIONS,
    "probe.send": PROBE_ACTIONS,
    "backend.serve": BACKEND_ACTIONS,
}

#: Actions that complete the wire event (degrade, don't sabotage).
DEGRADE_ACTIONS = frozenset({"slow_send", "slow_write"})


class ChaosPlan:
    """A reproducible adversary for the socket serving path.

    Parameters
    ----------
    seed:
        Root seed; each injection site derives its own generator
        stream from it, so draws at one site never perturb another.
    client_rate, server_rate:
        Per-event probability that the site injects *some* action
        (which one is a second seeded draw). Zero disables a site.
    script:
        Scripted mode: a map from site name to an explicit sequence of
        actions (``None`` entries mean "behave normally"). A scripted
        site ignores its rate and draws the sequence in order,
        behaving normally once exhausted.
    max_faults:
        Global cap on injected *sabotage* actions (degrade actions are
        uncounted); ``None`` means unbounded. A capped plan guarantees
        a finite fault schedule, which keeps retry-exhaustion out of a
        sweep when that is not the behaviour under test.
    slow_chunk_bytes, slow_pause_seconds:
        Shape of the slowloris dribble: payloads are written in chunks
        of this size with this pause between them (bounded below).
    oversize_bytes:
        Line length used by ``oversize_line`` — point it just past the
        server's ``max_line_bytes``.
    garbage_bytes:
        Length of the seeded garbage line.
    """

    def __init__(
        self,
        seed: int,
        *,
        client_rate: float = 0.25,
        server_rate: float = 0.25,
        router_rate: float = 0.0,
        probe_rate: float = 0.0,
        backend_rate: float = 0.0,
        script: Mapping[str, Sequence[str | None]] | None = None,
        max_faults: int | None = None,
        slow_chunk_bytes: int = 16,
        slow_pause_seconds: float = 0.001,
        oversize_bytes: int = 1 << 16,
        garbage_bytes: int = 64,
    ) -> None:
        for name, rate in (
            ("client_rate", client_rate),
            ("server_rate", server_rate),
            ("router_rate", router_rate),
            ("probe_rate", probe_rate),
            ("backend_rate", backend_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ServiceError(f"{name} must be within [0, 1], got {rate!r}")
        if slow_chunk_bytes < 1:
            raise ServiceError(
                f"slow_chunk_bytes must be positive, got {slow_chunk_bytes!r}"
            )
        if script is not None:
            for site, actions in script.items():
                allowed = SITE_ACTIONS.get(site)
                if allowed is None:
                    raise ServiceError(
                        f"unknown chaos site {site!r}; known: {sorted(SITE_ACTIONS)}"
                    )
                for action in actions:
                    if action is not None and action not in allowed:
                        raise ServiceError(
                            f"action {action!r} is not valid at site {site!r}; "
                            f"allowed: {allowed}"
                        )
        self.seed = seed
        self.slow_chunk_bytes = slow_chunk_bytes
        self.slow_pause_seconds = slow_pause_seconds
        self.oversize_bytes = oversize_bytes
        self.garbage_bytes = garbage_bytes
        self._rates = {
            "client.send": client_rate,
            "server.write": server_rate,
            "router.send": router_rate,
            "probe.send": probe_rate,
            "backend.serve": backend_rate,
        }
        self._script = {
            site: list(actions) for site, actions in (script or {}).items()
        }
        self._max_faults = max_faults
        self._lock = threading.Lock()
        self._streams: dict[str, np.random.Generator] = {}
        self._drawn: dict[str, int] = {}
        self._injected: dict[str, int] = {}
        self._faults = 0

    @classmethod
    def scripted(cls, script: Mapping[str, Sequence[str | None]]) -> "ChaosPlan":
        """A purely scripted plan (no seeded draws at unscripted sites)."""
        return cls(seed=0, client_rate=0.0, server_rate=0.0, script=script)

    # -- the draw ----------------------------------------------------------

    def _stream(self, site: str) -> np.random.Generator:
        stream = self._streams.get(site)
        if stream is None:
            # Stable per-site derivation: crc32 is deterministic across
            # processes (unlike salted str hashing).
            derived = (self.seed << 32) ^ zlib.crc32(site.encode("ascii"))
            stream = self._streams[site] = np.random.default_rng(derived)
        return stream

    def draw(self, site: str) -> str | None:
        """The action injected into this wire event, or ``None``.

        Each call consumes one decision from *site*'s schedule;
        sequential callers therefore replay identically for the same
        seed (or script).
        """
        actions = SITE_ACTIONS.get(site)
        if actions is None:
            raise ServiceError(
                f"unknown chaos site {site!r}; known: {sorted(SITE_ACTIONS)}"
            )
        with self._lock:
            self._drawn[site] = self._drawn.get(site, 0) + 1
            scripted = self._script.get(site)
            if scripted is not None:
                action = scripted.pop(0) if scripted else None
            else:
                rate = self._rates[site]
                stream = self._stream(site)
                # Two draws per event, fault or not, so the schedule at
                # one site is independent of how many faults fired.
                fires = float(stream.random()) < rate
                index = int(stream.integers(len(actions)))
                action = actions[index] if fires else None
            if action is not None and action not in DEGRADE_ACTIONS:
                if self._max_faults is not None and self._faults >= self._max_faults:
                    return None
                self._faults += 1
            if action is not None:
                self._injected[site] = self._injected.get(site, 0) + 1
            return action

    def garbage_line(self) -> bytes:
        """One newline-terminated line of seeded printable garbage."""
        stream = self._stream("garbage")
        codes = stream.integers(33, 127, size=self.garbage_bytes)
        return bytes(int(c) for c in codes) + b"\n"

    def oversize_line(self) -> bytes:
        """One newline-terminated line of ``oversize_bytes`` filler."""
        return b"!" * self.oversize_bytes + b"\n"

    # -- introspection -----------------------------------------------------

    @property
    def faults_injected(self) -> int:
        """Sabotage actions injected so far (degrade actions excluded)."""
        with self._lock:
            return self._faults

    def describe(self) -> dict[str, dict[str, int]]:
        """Per-site draw/injection tallies (for test assertions)."""
        with self._lock:
            return {
                "drawn": dict(self._drawn),
                "injected": dict(self._injected),
            }


def open_flood(
    host: str, port: int, count: int, *, timeout_seconds: float = 5.0
) -> Iterator[socket.socket]:
    """Open *count* idle connections against (*host*, *port*).

    The connection-flood arm of a chaos run: callers hold the sockets
    open (exhausting the server's connection cap) and close them when
    done. Yields each connected socket; stops early if the server
    starts refusing.
    """
    for _ in range(count):
        try:
            yield socket.create_connection((host, port), timeout=timeout_seconds)
        except OSError:
            return
