"""`OffTargetService` — the in-process face of the serving layer.

One object wires the three serving components together — the
:class:`~repro.service.sessions.SessionRegistry`, the
:class:`~repro.service.cache.CompiledGuideCache`, and the
:class:`~repro.service.scheduler.RequestScheduler` — behind a blocking
:meth:`query` / non-blocking :meth:`query_async` API. The socket
server (:mod:`repro.service.server`) is a thin JSON-lines shim over
this class, so everything the protocol can do, a library caller can do
directly::

    from repro import OffTargetService, SearchBudget, Guide

    with OffTargetService() as service:
        service.add_genome("default", genome)
        result = service.query([Guide("EMX1", "GAGTCCGAGCAGAAGAAGAA")],
                               SearchBudget(mismatches=3))
        print(result.num_hits)

Construct with ``background=False`` for a deterministic single-thread
service: queries then batch only when submitted through
:meth:`query_async` and flushed explicitly — the mode the differential
tests drive.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from pathlib import Path
from typing import Any, Iterable, Union

from ..core.bitparallel import DEFAULT_KERNEL
from ..core.compiler import SearchBudget
from ..errors import ServiceError
from ..genome.sequence import Sequence
from ..grna.guide import Guide
from ..obs import Metrics
from ..platforms.spec import ApSpec, FpgaSpec
from .cache import CompiledGuideCache
from .scheduler import QueryRequest, RequestScheduler, ServiceResult, make_requests
from .sessions import GenomeSession, SessionRegistry


class OffTargetService:
    """A persistent, batch-serving off-target search service.

    Parameters mirror the scheduler's knobs; see
    :class:`~repro.service.scheduler.RequestScheduler`. With
    ``background=True`` (the default) a daemon thread drains the queue
    after each ``batch_window_seconds`` coalescing window; with
    ``background=False`` the caller drives batching via :meth:`flush`.
    """

    def __init__(
        self,
        *,
        cache_capacity: int = 256,
        batch_window_seconds: float = 0.005,
        max_queue_depth: int = 128,
        workers: int = 1,
        chunk_length: int = 1 << 20,
        capacity_spec: Union[ApSpec, FpgaSpec, None] = None,
        max_guides_per_pass: int | None = None,
        background: bool = True,
        kernel: str = DEFAULT_KERNEL,
    ) -> None:
        self._metrics = Metrics()
        self._sessions = SessionRegistry(metrics=self._metrics)
        self._cache = CompiledGuideCache(cache_capacity, metrics=self._metrics)
        self._scheduler = RequestScheduler(
            self._sessions,
            self._cache,
            batch_window_seconds=batch_window_seconds,
            max_queue_depth=max_queue_depth,
            workers=workers,
            chunk_length=chunk_length,
            capacity_spec=capacity_spec,
            max_guides_per_pass=max_guides_per_pass,
            metrics=self._metrics,
            kernel=kernel,
        )
        self._background = background
        self._closed = False
        if background:
            self._scheduler.start()

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "OffTargetService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Stop the batcher and drain every admitted request."""
        if self._closed:
            return
        self._closed = True
        if self._background:
            self._scheduler.stop()
        else:
            self._scheduler.flush()

    # -- component access ---------------------------------------------------

    @property
    def sessions(self) -> SessionRegistry:
        return self._sessions

    @property
    def cache(self) -> CompiledGuideCache:
        return self._cache

    @property
    def scheduler(self) -> RequestScheduler:
        return self._scheduler

    @property
    def metrics(self) -> Metrics:
        return self._metrics

    # -- genome sessions ----------------------------------------------------

    def add_genome(
        self,
        session_id: str,
        genome: Union[Sequence, Iterable[Sequence], str, Path],
    ) -> GenomeSession:
        """Register a reference once: sequences in memory or a FASTA path."""
        if isinstance(genome, (str, Path)):
            return self._sessions.add_fasta(session_id, genome)
        return self._sessions.add_sequences(session_id, genome)

    # -- querying -----------------------------------------------------------

    def query_async(
        self,
        guides: Union[Guide, Iterable[Guide]],
        budget: SearchBudget,
        *,
        session_id: str = "default",
        request_id: str = "",
        timeout_seconds: float | None = None,
    ) -> "Future[ServiceResult]":
        """Admit a query; the returned future resolves after its batch runs.

        ``timeout_seconds`` becomes the request's dispatch deadline
        (admission control), measured from now.
        """
        if self._closed:
            raise ServiceError("service is closed")
        deadline = (
            time.monotonic() + timeout_seconds if timeout_seconds is not None else None
        )
        request = make_requests(
            guides,
            budget,
            session_id=session_id,
            request_id=request_id,
            deadline=deadline,
        )
        return self._scheduler.submit(request)

    def query(
        self,
        guides: Union[Guide, Iterable[Guide]],
        budget: SearchBudget,
        *,
        session_id: str = "default",
        request_id: str = "",
        timeout_seconds: float | None = None,
    ) -> ServiceResult:
        """Blocking query: admit, (batch,) execute, and demultiplex.

        In background mode this waits for the batcher; in deterministic
        mode it flushes the queue itself, so a solo blocking query
        always completes.
        """
        future = self.query_async(
            guides,
            budget,
            session_id=session_id,
            request_id=request_id,
            timeout_seconds=timeout_seconds,
        )
        if not self._background:
            self._scheduler.flush()
        return future.result(timeout=None)

    def submit(self, request: QueryRequest) -> "Future[ServiceResult]":
        """Admit a fully-formed :class:`QueryRequest` (advanced callers)."""
        if self._closed:
            raise ServiceError("service is closed")
        return self._scheduler.submit(request)

    def flush(self) -> int:
        """Deterministically drain and execute the current queue."""
        return self._scheduler.flush()

    # -- observability -------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """Cheap readiness snapshot (no metrics serialisation).

        What the socket server's ``health`` op builds on: queue
        pressure, registered sessions, and the compiled-guide cache
        counters — the signals a load balancer, membership prober, or
        drain script needs, without the full :meth:`stats` payload.
        """
        cache = self._cache.stats()
        return {
            "ready": not self._closed and not self._scheduler.stopped,
            "closed": self._closed,
            "queue_depth": self._scheduler.queue_depth,
            "max_queue_depth": self._scheduler.max_queue_depth,
            "sessions": self._sessions.ids(),
            "cache": {
                "size": int(cache["size"]),
                "capacity": int(cache["capacity"]),
                "hits": int(cache["hits"]),
                "misses": int(cache["misses"]),
                "adoptions": int(cache["adoptions"]),
                "hit_rate": float(cache["hit_rate"]),
            },
        }

    def stats(self) -> dict[str, Any]:
        """Service-level metrics: the ``--stats-json`` payload.

        Carries the acceptance-level signals by name — coalesced-batch
        count, cache hit rate, shed-request count — plus the raw
        :class:`~repro.obs.Metrics` snapshot for everything else.
        """
        metrics = self._metrics
        cache = self._cache.stats()
        return {
            "queue_depth": self._scheduler.queue_depth,
            "max_queue_depth": self._scheduler.max_queue_depth,
            "batch_window_seconds": self._scheduler.batch_window_seconds,
            "batches": int(metrics.counter("service.batches")),
            "coalesced_batches": int(metrics.counter("service.coalesced_batches")),
            "batch_requests": int(metrics.counter("service.batch_requests")),
            "genome_passes": int(metrics.counter("service.genome_passes")),
            "requests": {
                "admitted": int(metrics.counter("service.requests.admitted")),
                "completed": int(metrics.counter("service.requests.completed")),
                "shed": int(metrics.counter("service.requests.shed")),
                "deadline_expired": int(
                    metrics.counter("service.requests.deadline_expired")
                ),
                "over_capacity": int(
                    metrics.counter("service.requests.over_capacity")
                ),
            },
            "cache": cache,
            "sessions": self._sessions.describe(),
            "obs": metrics.snapshot(),
        }
