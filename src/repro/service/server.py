"""JSON-lines socket front end for :class:`OffTargetService`.

A deliberately small wire protocol: one JSON object per line in each
direction over a local TCP socket. Every response carries ``"ok"``;
failures carry a stable ``"error"`` kind the client maps back onto the
typed exception hierarchy, so overload and deadline behaviour is
end-to-end testable through the socket:

========== =============================================================
op          behaviour
========== =============================================================
``ping``    liveness check → ``{"ok": true, "op": "pong"}``
``query``   guides + budget + session → demultiplexed hits and stats
``stats``   service metrics (coalesced batches, cache hit rate, sheds)
``shutdown`` acknowledge, then stop the server loop
========== =============================================================

Error kinds: ``overloaded`` (queue at capacity — the request was shed
at admission), ``deadline`` (admitted but expired before dispatch),
``capacity`` (a guide cannot fit the configured device),
``bad_request`` (malformed guides/budget/ops), ``internal``.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, BinaryIO

from ..core.compiler import SearchBudget
from ..errors import (
    CapacityError,
    DeadlineExceededError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
)
from ..grna.guide import Guide
from ..grna.hit import OffTargetHit
from ..grna.pam import Pam, get_pam
from .api import OffTargetService
from .scheduler import ServiceResult

#: Wire-protocol limit on one request line (a guide panel is tiny; a
#: multi-megabyte line is a confused or hostile client).
MAX_LINE_BYTES = 4 << 20


def hit_to_wire(hit: OffTargetHit) -> dict[str, Any]:
    """One hit as a JSON-friendly dict (the protocol's hit schema)."""
    return {
        "guide": hit.guide_name,
        "sequence": hit.sequence_name,
        "strand": hit.strand,
        "start": hit.start,
        "end": hit.end,
        "mismatches": hit.mismatches,
        "rna_bulges": hit.rna_bulges,
        "dna_bulges": hit.dna_bulges,
        "site": hit.site,
    }


def hit_from_wire(payload: dict[str, Any]) -> OffTargetHit:
    """Inverse of :func:`hit_to_wire` (used by the client)."""
    return OffTargetHit(
        guide_name=payload["guide"],
        sequence_name=payload["sequence"],
        strand=payload["strand"],
        start=payload["start"],
        end=payload["end"],
        mismatches=payload["mismatches"],
        rna_bulges=payload.get("rna_bulges", 0),
        dna_bulges=payload.get("dna_bulges", 0),
        site=payload.get("site", ""),
    )


def guide_to_wire(guide: Guide) -> dict[str, Any]:
    """One guide as its wire dict, PAM side included."""
    return {
        "name": guide.name,
        "protospacer": guide.protospacer,
        "pam": {
            "name": guide.pam.name,
            "pattern": guide.pam.pattern,
            "side": guide.pam.side,
            "nuclease": guide.pam.nuclease,
        },
    }


def guide_from_wire(payload: dict[str, Any], *, default_pam: str = "NGG") -> Guide:
    """Build a :class:`Guide` from its wire dict.

    ``pam`` may be a catalog name / IUPAC string or the full
    ``{name, pattern, side}`` object :func:`guide_to_wire` emits.
    """
    raw_pam = payload.get("pam", default_pam)
    pam: Pam
    if isinstance(raw_pam, dict):
        pam = Pam(
            name=raw_pam.get("name", raw_pam["pattern"]),
            pattern=raw_pam["pattern"],
            side=raw_pam.get("side", "3prime"),
            nuclease=raw_pam.get("nuclease", "custom"),
        )
    else:
        pam = get_pam(raw_pam)
    return Guide(payload["name"], payload["protospacer"], pam)


def budget_from_wire(payload: dict[str, Any]) -> SearchBudget:
    """Build a :class:`SearchBudget` from its wire dict."""
    return SearchBudget(
        mismatches=payload.get("mismatches", 3),
        rna_bulges=payload.get("rna_bulges", 0),
        dna_bulges=payload.get("dna_bulges", 0),
    )


def _error_kind(error: Exception) -> str:
    if isinstance(error, ServiceOverloadedError):
        return "overloaded"
    if isinstance(error, DeadlineExceededError):
        return "deadline"
    if isinstance(error, CapacityError):
        return "capacity"
    if isinstance(error, (ReproError, KeyError, TypeError, ValueError)):
        return "bad_request"
    return "internal"


class OffTargetServer:
    """Serve one :class:`OffTargetService` over a local TCP socket.

    ``port=0`` (the default) lets the OS pick a free port; the bound
    address is available as :attr:`address` after :meth:`start` and is
    what ``repro-offtarget serve`` announces on stdout.
    """

    def __init__(
        self,
        service: OffTargetService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._socket: socket.socket | None = None
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); valid after :meth:`start`."""
        if self._socket is None:
            raise ServiceError("server is not started")
        host, port = self._socket.getsockname()[:2]
        return str(host), int(port)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind, listen, and start accepting; returns the bound address."""
        if self._socket is not None:
            raise ServiceError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(16)
        listener.settimeout(0.2)  # poll the stop flag between accepts
        self._socket = listener
        acceptor = threading.Thread(
            target=self._accept_loop, name="repro-service-accept", daemon=True
        )
        acceptor.start()
        self._threads.append(acceptor)
        return self.address

    def stop(self) -> None:
        """Stop accepting, close the listener, and shut the service down."""
        self._stop.set()
        if self._socket is not None:
            try:
                self._socket.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._socket = None
        for thread in self._threads:
            thread.join(timeout=10.0)
        self._threads.clear()
        self._service.close()

    def serve_forever(self, *, poll_seconds: float = 0.2) -> None:
        """Block the calling thread until :meth:`stop` (or ``shutdown`` op)."""
        while not self._stop.wait(timeout=poll_seconds):
            pass

    # -- connection handling -------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            listener = self._socket
            if listener is None:
                break
            try:
                connection, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us during stop()
            handler = threading.Thread(
                target=self._handle_connection,
                args=(connection,),
                name="repro-service-conn",
                daemon=True,
            )
            handler.start()

    def _handle_connection(self, connection: socket.socket) -> None:
        with connection:
            reader: BinaryIO = connection.makefile("rb")
            with reader:
                while not self._stop.is_set():
                    line = reader.readline(MAX_LINE_BYTES)
                    if not line:
                        return
                    response = self._respond(line)
                    try:
                        connection.sendall(
                            json.dumps(response).encode("ascii") + b"\n"
                        )
                    except OSError:
                        return
                    if response.get("op") == "bye":
                        self._stop.set()
                        return

    # -- the ops --------------------------------------------------------------

    def _respond(self, line: bytes) -> dict[str, Any]:
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ServiceError("request must be a JSON object")
            op = payload.get("op", "query")
            if op == "ping":
                return {"ok": True, "op": "pong"}
            if op == "stats":
                return {"ok": True, "op": "stats", "stats": self._service.stats()}
            if op == "shutdown":
                return {"ok": True, "op": "bye"}
            if op == "query":
                return self._respond_query(payload)
            raise ServiceError(f"unknown op {op!r}")
        except Exception as error:
            return {
                "ok": False,
                "error": _error_kind(error),
                "detail": str(error) or type(error).__name__,
            }

    def _respond_query(self, payload: dict[str, Any]) -> dict[str, Any]:
        raw_guides = payload.get("guides")
        if not isinstance(raw_guides, list) or not raw_guides:
            raise ServiceError("query needs a non-empty 'guides' list")
        default_pam = payload.get("pam", "NGG")
        guides = tuple(
            guide_from_wire(raw, default_pam=default_pam) for raw in raw_guides
        )
        budget = budget_from_wire(payload.get("budget", {}))
        future = self._service.query_async(
            guides,
            budget,
            session_id=payload.get("session", "default"),
            request_id=str(payload.get("id", "")),
            timeout_seconds=payload.get("timeout"),
        )
        result: ServiceResult = future.result()
        return {
            "ok": True,
            "op": "result",
            "id": result.request_id,
            "num_hits": result.num_hits,
            "hits": [hit_to_wire(hit) for hit in result.hits],
            "stats": result.stats,
        }
