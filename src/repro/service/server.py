"""JSON-lines socket front end for :class:`OffTargetService`.

A deliberately small wire protocol: one JSON object per line in each
direction over a local TCP socket. Every response carries ``"ok"``;
failures carry a stable ``"error"`` kind the client maps back onto the
typed exception hierarchy, so overload and deadline behaviour is
end-to-end testable through the socket:

=========== ============================================================
op           behaviour
=========== ============================================================
``ping``     liveness check → ``{"ok": true, "op": "pong"}``
``query``    guides + budget + session → demultiplexed hits and stats
``design``   region + PAM + guide length (+ budget, weights) → ranked
             design report; vetting runs as one coalesced query
             through this server's own service

``stats``    service metrics (coalesced batches, cache hit rate, sheds)
``health``   readiness/liveness: queue depth, in-flight requests,
             sessions, cache hit/miss counters, uptime, connection
             count, drain state — rich enough for load-aware
             membership decisions (the router tier's probe)
``register`` session + ``[{name, text}]`` sequences → idempotently
             ensure the genome session exists (``created`` reports
             whether this call made it)
``cache_export``  guide + budget → the cached CompiledGuide artefact
             as base64 pickle (``found: false`` on a miss; never
             compiles, moves no cache counters)
``cache_adopt``   base64 artefact → insert a peer-compiled artefact
             into this node's cache (cache-warmup forwarding; the
             artefact must carry its canonical content-derived name)
``drain``    acknowledge, stop accepting, finish admitted requests
             under the drain deadline, then exit
``shutdown`` acknowledge, then stop the server loop
=========== ============================================================

``cache_adopt`` unpickles its payload and therefore trusts its peers;
the serving stack binds to loopback by default and the cluster tier is
an intra-trust-boundary deployment (the router and its backends are
one operator's processes), which is the deployment this op assumes.

Error kinds: ``overloaded`` (queue at capacity or the connection cap
was hit — the request was shed at admission), ``deadline`` (admitted
but expired before dispatch), ``capacity`` (a guide cannot fit the
configured device), ``bad_request`` (malformed lines/guides/budgets/
ops — anything the *client* got wrong), ``internal`` (a server-side
bug; stdlib exceptions escaping our own demux code land here, never
under ``bad_request``).

Robustness invariants (pinned by ``tests/test_chaos.py``):

* **Framing is typed.** A line exceeding ``max_line_bytes`` is
  answered with ``bad_request`` ("line too long") and the connection
  is closed — never parsed as a truncated request plus garbage. A
  peer that disconnects mid-line is dropped silently (counted).
* **Retries are idempotent.** Responses to requests that carry an
  ``id`` are remembered (bounded LRU); a retried id returns the
  recorded response without re-executing, and concurrent duplicates
  share one in-flight execution. This is what makes the client's
  retry-on-transport-failure policy safe.
* **Drain is graceful.** :meth:`OffTargetServer.request_drain` (the
  ``drain`` op, or ``SIGTERM``/``SIGINT`` under ``repro-offtarget
  serve``) stops accepting, lets in-flight handlers finish admitted
  requests under a deadline, closes the service (which resolves every
  admitted future), and only then stops. :meth:`OffTargetServer.stop`
  runs the same sequence, so no code path abandons an executing
  request.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from typing import Any, Callable

from ..core.compiler import CompiledGuide, SearchBudget
from ..genome.sequence import Sequence
from ..errors import (
    CapacityError,
    DeadlineExceededError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
)
from ..grna.guide import Guide
from ..grna.hit import OffTargetHit
from ..grna.pam import Pam, get_pam
from ..obs import Metrics
from .api import OffTargetService
from .cache import canonical_name
from .chaos import ChaosPlan
from .scheduler import ServiceResult

#: Wire-protocol limit on one request line (a guide panel is tiny; a
#: multi-megabyte line is a confused or hostile client).
MAX_LINE_BYTES = 4 << 20


def hit_to_wire(hit: OffTargetHit) -> dict[str, Any]:
    """One hit as a JSON-friendly dict (the protocol's hit schema)."""
    return {
        "guide": hit.guide_name,
        "sequence": hit.sequence_name,
        "strand": hit.strand,
        "start": hit.start,
        "end": hit.end,
        "mismatches": hit.mismatches,
        "rna_bulges": hit.rna_bulges,
        "dna_bulges": hit.dna_bulges,
        "site": hit.site,
    }


def hit_from_wire(payload: dict[str, Any]) -> OffTargetHit:
    """Inverse of :func:`hit_to_wire` (used by the client)."""
    return OffTargetHit(
        guide_name=payload["guide"],
        sequence_name=payload["sequence"],
        strand=payload["strand"],
        start=payload["start"],
        end=payload["end"],
        mismatches=payload["mismatches"],
        rna_bulges=payload.get("rna_bulges", 0),
        dna_bulges=payload.get("dna_bulges", 0),
        site=payload.get("site", ""),
    )


def guide_to_wire(guide: Guide) -> dict[str, Any]:
    """One guide as its wire dict, PAM side included."""
    wire: dict[str, Any] = {
        "name": guide.name,
        "protospacer": guide.protospacer,
        "pam": {
            "name": guide.pam.name,
            "pattern": guide.pam.pattern,
            "side": guide.pam.side,
            "nuclease": guide.pam.nuclease,
        },
    }
    if guide.min_length is not None:
        wire["min_length"] = guide.min_length
    return wire


def guide_from_wire(payload: dict[str, Any], *, default_pam: str = "NGG") -> Guide:
    """Build a :class:`Guide` from its wire dict.

    ``pam`` may be a catalog name / IUPAC string or the full
    ``{name, pattern, side}`` object :func:`guide_to_wire` emits.
    """
    raw_pam = payload.get("pam", default_pam)
    pam: Pam
    if isinstance(raw_pam, dict):
        pam = Pam(
            name=raw_pam.get("name", raw_pam["pattern"]),
            pattern=raw_pam["pattern"],
            side=raw_pam.get("side", "3prime"),
            nuclease=raw_pam.get("nuclease", "custom"),
        )
    else:
        pam = get_pam(raw_pam)
    return Guide(
        payload["name"],
        payload["protospacer"],
        pam,
        min_length=payload.get("min_length"),
    )


def budget_from_wire(payload: dict[str, Any]) -> SearchBudget:
    """Build a :class:`SearchBudget` from its wire dict."""
    return SearchBudget(
        mismatches=payload.get("mismatches", 3),
        rna_bulges=payload.get("rna_bulges", 0),
        dna_bulges=payload.get("dna_bulges", 0),
    )


def _error_kind(error: Exception) -> str:
    """Classify an exception into its wire error kind.

    Only the typed library hierarchy maps to client-attributable
    kinds. Bare stdlib exceptions (``KeyError``/``TypeError``/
    ``ValueError``) escaping our own code are genuine server-side bugs
    and report ``internal`` — the demux/parse layers wrap the ones a
    malformed request can legitimately provoke into
    :class:`ServiceError` before they get here.
    """
    if isinstance(error, ServiceOverloadedError):
        return "overloaded"
    if isinstance(error, DeadlineExceededError):
        return "deadline"
    if isinstance(error, CapacityError):
        return "capacity"
    if isinstance(error, ReproError):
        return "bad_request"
    return "internal"


class _LineTooLong(Exception):
    """A request line exceeded the server's framing limit."""

    def __init__(self, length: int) -> None:
        super().__init__(length)
        self.length = length


class OffTargetServer:
    """Serve one :class:`OffTargetService` over a local TCP socket.

    ``port=0`` (the default) lets the OS pick a free port; the bound
    address is available as :attr:`address` after :meth:`start` and is
    what ``repro-offtarget serve`` announces on stdout.

    Parameters
    ----------
    max_connections:
        Concurrent-connection cap; a connection beyond it is answered
        with one ``overloaded`` error line and closed (the flood arm
        of the chaos suite).
    max_line_bytes:
        Framing limit for one request line; longer lines are rejected
        with a typed ``bad_request`` and the connection is closed.
    idempotency_capacity:
        How many completed responses (for requests carrying an ``id``)
        are remembered for retry deduplication, LRU-bounded.
    drain_deadline_seconds:
        How long :meth:`drain` waits for in-flight connection handlers
        before closing the service (which resolves every admitted
        future and unblocks any stragglers).
    chaos:
        Optional :class:`~repro.service.chaos.ChaosPlan` consulted at
        the ``server.write`` site — drops, truncates, or slows
        response writes for the differential chaos suite.
    """

    def __init__(
        self,
        service: OffTargetService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = 64,
        max_line_bytes: int = MAX_LINE_BYTES,
        idempotency_capacity: int = 1024,
        drain_deadline_seconds: float = 10.0,
        chaos: ChaosPlan | None = None,
    ) -> None:
        if not isinstance(max_connections, int) or max_connections < 1:
            raise ServiceError(
                f"max_connections must be a positive integer, got {max_connections!r}"
            )
        if not isinstance(max_line_bytes, int) or max_line_bytes < 64:
            raise ServiceError(
                f"max_line_bytes must be an integer >= 64, got {max_line_bytes!r}"
            )
        if not isinstance(idempotency_capacity, int) or idempotency_capacity < 1:
            raise ServiceError(
                f"idempotency_capacity must be a positive integer, "
                f"got {idempotency_capacity!r}"
            )
        if drain_deadline_seconds < 0:
            raise ServiceError(
                f"drain_deadline_seconds must be >= 0, got {drain_deadline_seconds!r}"
            )
        self._service = service
        self._metrics: Metrics = service.metrics
        self._host = host
        self._port = port
        self._max_connections = max_connections
        self._max_line_bytes = max_line_bytes
        self._idempotency_capacity = idempotency_capacity
        self._drain_deadline = drain_deadline_seconds
        self._chaos = chaos
        self._poll_seconds = 0.2
        self._socket: socket.socket | None = None
        self._acceptor: threading.Thread | None = None
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._drain_lock = threading.Lock()
        self._drain_thread: threading.Thread | None = None
        self._finished = False
        self._drained_clean = True
        self._handler_lock = threading.Lock()
        self._handlers: dict[threading.Thread, socket.socket] = {}
        self._idemp_lock = threading.Lock()
        self._inflight: dict[str, "Future[Any]"] = {}
        self._completed: "OrderedDict[str, dict[str, Any]]" = OrderedDict()
        self._executions: dict[str, int] = {}
        self._started = time.monotonic()
        self._inflight_ops_lock = threading.Lock()
        self._inflight_ops = 0

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); valid after :meth:`start`."""
        if self._socket is None:
            raise ServiceError("server is not started")
        host, port = self._socket.getsockname()[:2]
        return str(host), int(port)

    @property
    def max_connections(self) -> int:
        return self._max_connections

    @property
    def max_line_bytes(self) -> int:
        return self._max_line_bytes

    @property
    def idempotency_capacity(self) -> int:
        return self._idempotency_capacity

    @property
    def service(self) -> OffTargetService:
        """The service this server fronts."""
        return self._service

    @property
    def accepting(self) -> bool:
        """True while the listener is open (new connections accepted)."""
        return self._socket is not None

    @property
    def draining(self) -> bool:
        """True once a graceful drain has begun."""
        return self._draining.is_set()

    @property
    def stopped(self) -> bool:
        """True once the serve loop has been told to exit."""
        return self._stop.is_set()

    @property
    def active_connections(self) -> int:
        """Currently-served connections (live handler threads)."""
        with self._handler_lock:
            return sum(1 for thread in self._handlers if thread.is_alive())

    @property
    def inflight_requests(self) -> int:
        """Executing ops (query/design) currently being served."""
        with self._inflight_ops_lock:
            return self._inflight_ops

    @property
    def uptime_seconds(self) -> float:
        """Seconds since this server object was constructed."""
        return time.monotonic() - self._started

    def execution_counts(self) -> dict[str, int]:
        """How many times each request id was actually submitted.

        The chaos suite's duplicate detector: under any retry schedule
        every value must stay at 1.
        """
        with self._idemp_lock:
            return dict(self._executions)

    def idempotent_ids(self) -> tuple[tuple[str, bool], ...]:
        """(request id, completed?) pairs currently remembered."""
        with self._idemp_lock:
            completed = [(request_id, True) for request_id in self._completed]
            inflight = [(request_id, False) for request_id in self._inflight]
        return tuple(completed + inflight)

    def completed_response(self, request_id: str) -> dict[str, Any] | None:
        """The remembered response for *request_id*, if any (checker)."""
        with self._idemp_lock:
            response = self._completed.get(request_id)
            return dict(response) if response is not None else None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind, listen, and start accepting; returns the bound address."""
        if self._socket is not None:
            raise ServiceError("server already started")
        if self._finished:
            raise ServiceError("server already stopped; build a new one")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(16)
        listener.settimeout(self._poll_seconds)  # poll stop/drain between accepts
        self._socket = listener
        acceptor = threading.Thread(
            target=self._accept_loop, name="repro-service-accept", daemon=True
        )
        acceptor.start()
        self._acceptor = acceptor
        return self.address

    def stop(self) -> None:
        """Stop the server without abandoning in-flight work.

        Equivalent to :meth:`drain` under the configured deadline:
        in-flight connection handlers are joined (bounded) *before*
        the service is closed, so an executing request is answered,
        never cut off mid-``_respond``.
        """
        self.drain()

    def request_drain(self) -> None:
        """Begin a graceful drain in the background (idempotent).

        Safe to call from a signal handler or a connection handler:
        it only sets the draining flag and spawns the drain thread.
        """
        self._draining.set()
        with self._handler_lock:
            if self._drain_thread is not None or self._finished:
                return
            self._drain_thread = threading.Thread(
                target=self.drain, name="repro-service-drain", daemon=True
            )
            self._drain_thread.start()

    def drain(self, deadline_seconds: float | None = None) -> bool:
        """Gracefully stop: refuse new work, finish admitted work, exit.

        The sequence: stop accepting (close the listener), give
        in-flight connection handlers *deadline_seconds* (default: the
        configured drain deadline) to finish the requests they are
        serving, close the service — which drains every admitted
        request, resolving the futures any straggling handler is
        blocked on — then set the stop flag and reap stragglers.
        Returns True when every handler finished inside the deadline.
        Idempotent; concurrent callers serialize on one drain.
        """
        with self._drain_lock:
            if self._finished:
                return self._drained_clean
            self._draining.set()
            deadline = (
                deadline_seconds
                if deadline_seconds is not None
                else self._drain_deadline
            )
            self._close_listener()
            acceptor = self._acceptor
            if acceptor is not None and acceptor is not threading.current_thread():
                acceptor.join(timeout=5.0)
            self._acceptor = None
            clean = self._join_handlers(deadline)
            # Closing the service stops the batcher *after* draining the
            # queue: every admitted future resolves, which unblocks any
            # handler still waiting in _respond_query.
            self._service.close()
            self._stop.set()
            self._join_handlers(5.0)
            self._metrics.incr("service.drain.completed")
            if not clean:
                self._metrics.incr("service.drain.deadline_expired")
            self._drained_clean = clean
            self._finished = True
            return clean

    def serve_forever(self, *, poll_seconds: float = 0.2) -> None:
        """Block the calling thread until :meth:`stop` (or ``shutdown`` op)."""
        while not self._stop.wait(timeout=poll_seconds):
            pass

    def health(self) -> dict[str, Any]:
        """Readiness/liveness snapshot (the ``health`` op's payload).

        Carries the load signals a membership prober needs to make
        *load-aware* decisions, not just a liveness ack: in-flight
        executing ops, cache hit/miss counters, the registered session
        list, and uptime (a small uptime after a large one means the
        node restarted and lost its sessions and cache).
        """
        service = self._service.health()
        draining = self._draining.is_set()
        stopped = self._stop.is_set()
        return {
            "live": not stopped,
            "ready": (
                not draining
                and not stopped
                and self._socket is not None
                and bool(service["ready"])
            ),
            "draining": draining,
            "connections": self.active_connections,
            "max_connections": self._max_connections,
            "inflight": self.inflight_requests,
            "uptime_seconds": self.uptime_seconds,
            "queue_depth": service["queue_depth"],
            "max_queue_depth": service["max_queue_depth"],
            "sessions": service["sessions"],
            "cache": service["cache"],
            "executions": int(self._metrics.counter("service.server.executions")),
            "deduped": int(
                self._metrics.counter("service.server.requests.deduped")
            ),
        }

    def die(self) -> None:
        """Crash abruptly: no drain, no goodbye (the chaos kill switch).

        The in-process stand-in for ``SIGKILL`` in cross-node chaos
        tests: the listener and every open connection are torn down
        immediately and the serve loop is told to exit, abandoning
        admitted work exactly as a real crash would. The underlying
        service object is *not* closed — its state (execution counts,
        idempotency records) stays inspectable post-mortem, which is
        what the duplicate-execution proofs audit.
        """
        self._metrics.incr("service.server.died")
        self._stop.set()
        self._draining.set()
        self._close_listener()
        with self._handler_lock:
            connections = list(self._handlers.values())
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        # Deliberately no _drain_lock: a crash must never block behind
        # an in-progress graceful drain. The flag writes are atomic and
        # a later stop()/drain() call returns immediately.
        self._finished = True
        self._drained_clean = False

    def _close_listener(self) -> None:
        listener = self._socket
        self._socket = None
        if listener is not None:
            try:
                listener.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def _join_handlers(self, deadline_seconds: float) -> bool:
        """Join live handler threads; True if all finished in time."""
        deadline = time.monotonic() + deadline_seconds
        while True:
            with self._handler_lock:
                threads = [
                    thread
                    for thread in self._handlers
                    if thread.is_alive() and thread is not threading.current_thread()
                ]
            if not threads:
                return True
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            threads[0].join(timeout=min(remaining, 0.5))

    # -- connection handling -------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set() and not self._draining.is_set():
            listener = self._socket
            if listener is None:
                break
            try:
                connection, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us during stop()/drain()
            self._metrics.incr("service.connections.accepted")
            if self._draining.is_set() or self._stop.is_set():
                self._refuse(connection, "server is draining")
                continue
            with self._handler_lock:
                active = sum(1 for t in self._handlers if t.is_alive())
                if active >= self._max_connections:
                    handler = None
                else:
                    handler = threading.Thread(
                        target=self._handle_connection,
                        args=(connection,),
                        name="repro-service-conn",
                        daemon=True,
                    )
                    self._handlers[handler] = connection
                    self._metrics.gauge("service.connections.active", active + 1)
            if handler is None:
                self._refuse(
                    connection,
                    f"connection limit reached ({self._max_connections})",
                )
                continue
            handler.start()

    def _refuse(self, connection: socket.socket, detail: str) -> None:
        """Answer one typed ``overloaded`` line and close (best effort)."""
        self._metrics.incr("service.connections.rejected")
        try:
            connection.settimeout(1.0)
            connection.sendall(
                json.dumps(
                    {"ok": False, "error": "overloaded", "detail": detail}
                ).encode("ascii")
                + b"\n"
            )
        except OSError:
            pass
        finally:
            try:
                connection.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def _read_line(
        self, connection: socket.socket, buffer: bytearray
    ) -> bytes | None:
        """Read one newline-terminated line into *buffer*; None = close.

        Owns its buffer instead of trusting ``makefile().readline``:
        a ``readline(limit)`` that fills its limit returns a truncated
        partial line that would otherwise be parsed as one malformed
        request plus a second garbage request. Here an overlong line
        raises :class:`_LineTooLong` (answered with a typed
        ``bad_request``), a mid-line disconnect is counted and
        dropped, and the stop/drain flags are polled between reads so
        a drain never waits on an idle peer.
        """
        while True:
            newline = buffer.find(b"\n")
            if newline >= 0:
                if newline + 1 > self._max_line_bytes:
                    raise _LineTooLong(newline + 1)
                line = bytes(buffer[: newline + 1])
                del buffer[: newline + 1]
                return line
            if len(buffer) > self._max_line_bytes:
                raise _LineTooLong(len(buffer))
            if self._stop.is_set():
                return None
            if self._draining.is_set() and not buffer:
                return None  # idle connection; drain closes it
            try:
                chunk = connection.recv(1 << 16)
            except socket.timeout:
                continue
            except OSError:
                return None
            if not chunk:
                if buffer:
                    self._metrics.incr("service.server.midline_disconnects")
                return None
            buffer.extend(chunk)

    def _handle_connection(self, connection: socket.socket) -> None:
        try:
            connection.settimeout(self._poll_seconds)
            buffer = bytearray()
            with connection:
                while not self._stop.is_set():
                    try:
                        line = self._read_line(connection, buffer)
                    except _LineTooLong as error:
                        self._metrics.incr("service.server.oversize_rejected")
                        self._send_response(
                            connection,
                            {
                                "ok": False,
                                "error": "bad_request",
                                "detail": (
                                    f"request line too long ({error.length} bytes "
                                    f"> {self._max_line_bytes}); closing connection"
                                ),
                            },
                        )
                        return
                    if line is None:
                        return
                    response = self._respond(line)
                    if not self._send_response(connection, response):
                        return
                    if response.get("op") == "bye":
                        self._stop.set()
                        return
                    if response.get("op") == "draining":
                        self.request_drain()
                        return
                    if self._draining.is_set():
                        return
        finally:
            with self._handler_lock:
                self._handlers.pop(threading.current_thread(), None)
                active = sum(1 for t in self._handlers if t.is_alive())
                self._metrics.gauge("service.connections.active", active)

    def _send_response(
        self, connection: socket.socket, response: dict[str, Any]
    ) -> bool:
        """Write one response line; False means the connection is dead.

        The ``server.write`` chaos site: a plan may drop the write,
        truncate it, or slow it down. Dropping/truncating a response
        is recoverable for the peer only because a retried request id
        is served from the idempotency record, never re-executed.
        """
        data = json.dumps(response).encode("ascii") + b"\n"
        action = self._chaos.draw("server.write") if self._chaos is not None else None
        try:
            if action == "drop_before_write":
                self._metrics.incr("service.server.chaos_injected")
                return False
            if action == "truncate_write":
                self._metrics.incr("service.server.chaos_injected")
                connection.sendall(data[: max(1, len(data) // 2)])
                return False
            if action == "slow_write" and self._chaos is not None:
                step = self._chaos.slow_chunk_bytes
                for offset in range(0, len(data), step):
                    connection.sendall(data[offset : offset + step])
                    time.sleep(self._chaos.slow_pause_seconds)
                return True
            connection.sendall(data)
            return True
        except OSError:
            return False

    # -- the ops --------------------------------------------------------------

    def _respond(self, line: bytes) -> dict[str, Any]:
        try:
            try:
                payload = json.loads(line)
            except ValueError as error:
                raise ServiceError(f"request is not valid JSON: {error}") from error
            if not isinstance(payload, dict):
                raise ServiceError("request must be a JSON object")
            op = payload.get("op", "query")
            if op == "ping":
                return {"ok": True, "op": "pong"}
            if op == "stats":
                return {"ok": True, "op": "stats", "stats": self._service.stats()}
            if op == "health":
                return {"ok": True, "op": "health", "health": self.health()}
            if op == "drain":
                return {"ok": True, "op": "draining"}
            if op == "shutdown":
                return {"ok": True, "op": "bye"}
            if op == "register":
                return self._respond_register(payload)
            if op == "cache_export":
                return self._respond_cache_export(payload)
            if op == "cache_adopt":
                return self._respond_cache_adopt(payload)
            if op == "query":
                return self._track_inflight(self._respond_query, payload)
            if op == "design":
                return self._track_inflight(self._respond_design, payload)
            raise ServiceError(f"unknown op {op!r}")
        except Exception as error:
            kind = _error_kind(error)
            if kind == "internal":
                self._metrics.incr("service.server.internal_errors")
            return {
                "ok": False,
                "error": kind,
                "detail": str(error) or type(error).__name__,
            }

    def _track_inflight(
        self,
        respond: Callable[[dict[str, Any]], dict[str, Any]],
        payload: dict[str, Any],
    ) -> dict[str, Any]:
        """Run an executing op under the in-flight gauge the health op
        reports (what makes membership decisions load-aware)."""
        with self._inflight_ops_lock:
            self._inflight_ops += 1
            self._metrics.gauge("service.server.inflight", self._inflight_ops)
        try:
            return respond(payload)
        finally:
            with self._inflight_ops_lock:
                self._inflight_ops -= 1
                self._metrics.gauge("service.server.inflight", self._inflight_ops)

    def _respond_register(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Idempotently ensure a genome session exists on this node.

        Registering a session that already exists is a no-op answered
        with ``created: false`` — the existing content wins, because a
        re-register races only against the client's own earlier send
        (same content) after a retry or a backend restart. This is
        what lets a reconnecting client repair a restarted backend
        without coordinating "did my first register land?".
        """
        session_id = str(payload.get("session", "default"))
        raw = payload.get("sequences")
        if not isinstance(raw, list) or not raw:
            raise ServiceError("register needs a non-empty 'sequences' list")
        try:
            sequences = tuple(
                Sequence.from_text(str(entry["name"]), str(entry["text"]))
                for entry in raw
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ServiceError(f"malformed register request: {error!r}") from error
        if session_id in self._service.sessions:
            created = False
        else:
            try:
                self._service.sessions.add_sequences(session_id, sequences)
                created = True
            except ServiceError:
                # Lost a register/register race: the session exists now,
                # which is all this op promises.
                created = False
        self._metrics.incr("service.server.registers")
        return {
            "ok": True,
            "op": "registered",
            "session": session_id,
            "created": created,
        }

    def _respond_cache_export(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Ship a cached CompiledGuide artefact to a peer (via the router).

        A pure probe: on a miss it answers ``found: false`` rather
        than compiling, and the peek moves no cache counters, so
        warmup forwarding never distorts the hit/miss accounting the
        SVC rules audit.
        """
        raw_guide = payload.get("guide")
        if not isinstance(raw_guide, dict):
            raise ServiceError("cache_export needs a 'guide' object")
        try:
            guide = guide_from_wire(raw_guide)
            budget = budget_from_wire(payload.get("budget", {}))
        except (KeyError, TypeError, ValueError) as error:
            raise ServiceError(
                f"malformed cache_export request: {error!r}"
            ) from error
        compiled = self._service.cache.peek(guide, budget)
        if compiled is None:
            return {"ok": True, "op": "artefact", "found": False, "artefact": None}
        blob = pickle.dumps(compiled, protocol=pickle.HIGHEST_PROTOCOL)
        self._metrics.incr("service.server.cache_exports")
        return {
            "ok": True,
            "op": "artefact",
            "found": True,
            "artefact": base64.b64encode(blob).decode("ascii"),
            "key": compiled.guide.name,
        }

    def _respond_cache_adopt(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Adopt a peer-compiled artefact into this node's cache.

        The payload must decode to a :class:`CompiledGuide` whose name
        matches its content's canonical name — the cache refuses
        anything else — so a corrupted transfer surfaces as a typed
        ``bad_request``, never as wrong hits.
        """
        raw = payload.get("artefact")
        if not isinstance(raw, str) or not raw:
            raise ServiceError("cache_adopt needs a base64 'artefact' string")
        try:
            blob = base64.b64decode(raw.encode("ascii"), validate=True)
            compiled = pickle.loads(blob)
        except ServiceError:
            raise
        except Exception as error:  # noqa: BLE001 - decode failures are typed
            raise ServiceError(f"artefact does not decode: {error!r}") from error
        if not isinstance(compiled, CompiledGuide):
            raise ServiceError(
                f"artefact decodes to {type(compiled).__name__}, "
                f"not a CompiledGuide"
            )
        key = self._service.cache.adopt(compiled)
        self._metrics.incr("service.server.cache_adoptions")
        return {"ok": True, "op": "adopted", "key": canonical_name(key)}

    def _decode_query(
        self, payload: dict[str, Any]
    ) -> tuple[tuple[Guide, ...], SearchBudget, str, str, float | None]:
        """Parse a query payload, wrapping malformed-wire stdlib errors.

        Anything a hostile payload can provoke out of the wire
        decoders (missing keys, wrong shapes, bad numbers) becomes a
        typed :class:`ServiceError` here, so ``bad_request`` stays the
        client's verdict and a bare stdlib exception further down the
        stack keeps meaning ``internal``.
        """
        raw_guides = payload.get("guides")
        if not isinstance(raw_guides, list) or not raw_guides:
            raise ServiceError("query needs a non-empty 'guides' list")
        default_pam = payload.get("pam", "NGG")
        try:
            guides = tuple(
                guide_from_wire(raw, default_pam=default_pam) for raw in raw_guides
            )
            budget = budget_from_wire(payload.get("budget", {}))
            session_id = str(payload.get("session", "default"))
            request_id = str(payload.get("id", ""))
            raw_timeout = payload.get("timeout")
            timeout = None if raw_timeout is None else float(raw_timeout)
        except (KeyError, TypeError, ValueError) as error:
            raise ServiceError(f"malformed query: {error!r}") from error
        return guides, budget, session_id, request_id, timeout

    def _submit(
        self,
        guides: tuple[Guide, ...],
        budget: SearchBudget,
        session_id: str,
        request_id: str,
        timeout: float | None,
    ) -> "Future[ServiceResult]":
        self._metrics.incr("service.server.executions")
        if request_id:
            self._executions[request_id] = self._executions.get(request_id, 0) + 1
        return self._service.query_async(
            guides,
            budget,
            session_id=session_id,
            request_id=request_id,
            timeout_seconds=timeout,
        )

    def _respond_idempotent(
        self,
        request_id: str,
        start: Callable[[], "Future[Any]"],
        render: Callable[[Any], dict[str, Any]],
    ) -> dict[str, Any]:
        """Execute-once machinery shared by every executing op.

        With a *request_id*: a recorded completed response is replayed
        bit-identically without re-executing; an id already in flight
        joins the first execution's future; otherwise *start* runs
        exactly once and its rendered response is remembered (LRU,
        ``idempotency_capacity``-bounded). A typed failure is *not*
        recorded — a shed/expired/over-capacity request never
        executed, so resubmission is safe. Without an id the op simply
        executes (nothing to deduplicate against).
        """
        if request_id:
            with self._idemp_lock:
                recorded = self._completed.get(request_id)
                if recorded is not None:
                    # A retried id: answer what the first execution
                    # answered, bit-identically, without re-executing.
                    self._completed.move_to_end(request_id)
                    self._metrics.incr("service.server.requests.deduped")
                    return dict(recorded)
                future = self._inflight.get(request_id)
                if future is None:
                    future = start()
                    self._inflight[request_id] = future
                else:
                    self._metrics.incr("service.server.requests.deduped")
        else:
            future = start()
        try:
            result = future.result()
        except Exception:
            # A typed failure is not recorded: deadline/capacity/shed
            # requests were never executed, so resubmission is safe.
            if request_id:
                with self._idemp_lock:
                    self._inflight.pop(request_id, None)
            raise
        response = render(result)
        if request_id:
            with self._idemp_lock:
                self._inflight.pop(request_id, None)
                self._completed[request_id] = dict(response)
                while len(self._completed) > self._idempotency_capacity:
                    self._completed.popitem(last=False)
        return response

    def _respond_query(self, payload: dict[str, Any]) -> dict[str, Any]:
        guides, budget, session_id, request_id, timeout = self._decode_query(payload)

        def render(result: ServiceResult) -> dict[str, Any]:
            return {
                "ok": True,
                "op": "result",
                "id": result.request_id,
                "num_hits": result.num_hits,
                "hits": [hit_to_wire(hit) for hit in result.hits],
                "stats": result.stats,
            }

        return self._respond_idempotent(
            request_id,
            lambda: self._submit(guides, budget, session_id, request_id, timeout),
            render,
        )

    # -- the design op -------------------------------------------------------

    def _decode_design(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Parse a design payload, wrapping malformed-wire stdlib errors."""
        raw_region = payload.get("region")
        if not isinstance(raw_region, str) or not raw_region:
            raise ServiceError("design needs a non-empty 'region' sequence string")
        try:
            region = Sequence.from_text(
                str(payload.get("region_name", "region")), raw_region
            )
            pam = get_pam(str(payload.get("pam", "NGG")))
            guide_length = int(payload.get("guide_length", 20))
            budget = budget_from_wire(payload.get("budget", {}))
            session_id = str(payload.get("session", "default"))
            request_id = str(payload.get("id", ""))
            raw_timeout = payload.get("timeout")
            timeout = None if raw_timeout is None else float(raw_timeout)
            raw_weights = payload.get("weights")
            if raw_weights is not None and not isinstance(raw_weights, dict):
                raise ServiceError("design 'weights' must be a JSON object")
            include_hits = bool(payload.get("include_hits", True))
        except (KeyError, TypeError, ValueError) as error:
            raise ServiceError(f"malformed design request: {error!r}") from error
        return {
            "region": region,
            "pam": pam,
            "guide_length": guide_length,
            "budget": budget,
            "session_id": session_id,
            "request_id": request_id,
            "timeout": timeout,
            "weights": raw_weights,
            "include_hits": include_hits,
        }

    def _start_design(self, params: dict[str, Any]) -> "Future[Any]":
        """Begin one design execution; its future resolves the report.

        The pipeline itself runs on a worker thread so a design id in
        flight can be joined by a concurrent retry exactly like a
        query id; the vetting stage inside goes through this server's
        own service (session registry, compiled-guide cache,
        admission control).
        """
        from ..design.pipeline import run_design
        from ..design.score import weights_from_mapping

        weights = weights_from_mapping(
            params["weights"], guide_length=params["guide_length"]
        )
        self._metrics.incr("service.server.executions")
        self._metrics.incr("service.server.design_requests")
        request_id = params["request_id"]
        if request_id:
            self._executions[request_id] = self._executions.get(request_id, 0) + 1
        future: "Future[Any]" = Future()

        def _run() -> None:
            try:
                report = run_design(
                    params["region"],
                    None,
                    params["pam"],
                    guide_length=params["guide_length"],
                    budget=params["budget"],
                    weights=weights,
                    service=self._service,
                    session_id=params["session_id"],
                    request_id=request_id,
                    timeout_seconds=params["timeout"],
                )
            except BaseException as error:  # noqa: BLE001 - relayed to caller
                future.set_exception(error)
            else:
                future.set_result(report)

        threading.Thread(
            target=_run, name="repro-service-design", daemon=True
        ).start()
        return future

    def _respond_design(self, payload: dict[str, Any]) -> dict[str, Any]:
        params = self._decode_design(payload)

        def render(report: Any) -> dict[str, Any]:
            from ..design.pipeline import report_to_json

            return {
                "ok": True,
                "op": "design_result",
                "id": params["request_id"],
                "candidates": report.num_candidates,
                "report": report_to_json(
                    report, include_hits=params["include_hits"]
                ),
            }

        return self._respond_idempotent(
            params["request_id"], lambda: self._start_design(params), render
        )
