"""repro — automata-based CRISPR/Cas9 gRNA off-target search.

Reproduction of "Searching for Potential gRNA Off-Target Sites for
CRISPR/Cas9 Using Automata Processing Across Different Platforms"
(Bo, Dang, Sadredini, Skadron — HPCA 2018).

The package compiles guide RNAs into mismatch/bulge-counting automata,
runs them over reference genomes through functional models of four
platforms (CPU/HyperScan, GPU/iNFAnt2, FPGA, Micron AP), and compares
against reimplementations of Cas-OFFinder and CasOT.

Quickstart::

    import repro

    genome = repro.random_genome(200_000, seed=1)
    guides = repro.sample_guides_from_genome(genome, 4, seed=2)
    report = repro.OffTargetSearch(guides, repro.SearchBudget(mismatches=3)).run(genome)
    print(report.summary())
"""

from .core.search import OffTargetSearch, SearchBudget, SearchReport
from .core.bitparallel import BitParallelPanel, DEFAULT_KERNEL, KERNEL_NAMES
from .core.compiler import compile_guide, compile_library, CompiledGuide, CompiledLibrary
from .core.parallel import FaultPlan, FaultSpec, ParallelSearch
from .core.reference import NaiveSearcher
from .obs import Metrics
from .core.streaming import StreamingSearch
from .genome.sequence import Sequence
from .genome.fasta import read_fasta, write_fasta
from .genome.synthetic import random_genome, SyntheticGenomeBuilder, plant_sites
from .grna.guide import Guide
from .grna.library import GuideLibrary, parse_guide_table, sample_guides_from_genome
from .grna.pam import Pam, get_pam, PAM_CATALOG
from .grna.hit import OffTargetHit, render_alignment
from .service import OffTargetService, ServiceClient, ServiceResult
from .cluster import BackendSpec, ClusterRouter, RouterConfig
from .design import (
    Candidate,
    CandidateScore,
    DesignReport,
    ScoreWeights,
    enumerate_candidates,
    render_design_tsv,
    run_design,
)
from .errors import DesignError, ReproError, ServiceError, ServiceOverloadedError

__version__ = "1.0.0"

__all__ = [
    "OffTargetSearch",
    "SearchBudget",
    "SearchReport",
    "BitParallelPanel",
    "DEFAULT_KERNEL",
    "KERNEL_NAMES",
    "compile_guide",
    "compile_library",
    "CompiledGuide",
    "CompiledLibrary",
    "FaultPlan",
    "FaultSpec",
    "Metrics",
    "NaiveSearcher",
    "ParallelSearch",
    "StreamingSearch",
    "Sequence",
    "read_fasta",
    "write_fasta",
    "random_genome",
    "SyntheticGenomeBuilder",
    "plant_sites",
    "Guide",
    "GuideLibrary",
    "parse_guide_table",
    "sample_guides_from_genome",
    "Pam",
    "get_pam",
    "PAM_CATALOG",
    "OffTargetHit",
    "render_alignment",
    "OffTargetService",
    "ServiceClient",
    "ServiceResult",
    "BackendSpec",
    "ClusterRouter",
    "RouterConfig",
    "Candidate",
    "CandidateScore",
    "DesignReport",
    "ScoreWeights",
    "enumerate_candidates",
    "render_design_tsv",
    "run_design",
    "DesignError",
    "ReproError",
    "ServiceError",
    "ServiceOverloadedError",
    "__version__",
]
