"""The design pipeline: enumerate → coalesced vet → score → rank.

:func:`run_design` is the one entry point every surface calls — the
``design`` CLI subcommand, the socket server's ``design`` op, and
library callers. Its report renders as a ranked TSV
(:func:`render_design_tsv`) or a JSON document
(:func:`report_to_json`); both carry the full per-component score
breakdown plus every candidate's off-target set, so the design run is
auditable against a per-candidate ``search``.

The pipeline is deterministic end to end: enumeration order is
positional, vetting is the bit-identical coalesced pass, and scoring
is pure arithmetic with a fixed tie-break — the same region, reference,
and weight table always produce the same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Union

from ..core.bitparallel import DEFAULT_KERNEL
from ..core.compiler import SearchBudget
from ..errors import DesignError
from ..genome.sequence import Sequence
from ..grna.hit import OffTargetHit
from ..grna.pam import Pam, get_pam
from ..obs import Metrics
from .enumerate import Candidate, enumerate_candidates
from .score import CandidateScore, ScoreWeights, score_candidates
from .vet import VetResult, vet_candidates, vet_candidates_via_service

if TYPE_CHECKING:  # lazy: design stays importable without the service layer
    from ..service.api import OffTargetService


@dataclass(frozen=True)
class DesignReport:
    """Everything one design run produced."""

    pam: Pam
    guide_length: int
    budget: SearchBudget
    weights: ScoreWeights
    ranked: tuple[CandidateScore, ...]
    hits_by_candidate: dict[str, tuple[OffTargetHit, ...]]
    panel_guides: int
    genome_passes: int
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def num_candidates(self) -> int:
        return len(self.ranked)

    def hits_for(self, candidate: Candidate) -> tuple[OffTargetHit, ...]:
        return self.hits_by_candidate.get(candidate.name, ())

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"{self.num_candidates} candidate(s) [{self.pam.name} "
            f"{self.pam.side}, {self.guide_length} nt] vetted in "
            f"{self.genome_passes} genome pass(es) over a "
            f"{self.panel_guides}-guide panel"
        )


def run_design(
    region: Union[Sequence, Iterable[Sequence]],
    genome: Union[Sequence, Iterable[Sequence], None],
    pam: Union[Pam, str] = "NGG",
    *,
    guide_length: int = 20,
    budget: SearchBudget | None = None,
    weights: ScoreWeights | None = None,
    workers: int = 1,
    chunk_length: int = 1 << 20,
    kernel: str = DEFAULT_KERNEL,
    metrics: Metrics | None = None,
    service: "OffTargetService | None" = None,
    session_id: str = "default",
    request_id: str = "",
    timeout_seconds: float | None = None,
) -> DesignReport:
    """Run the full pipeline over *region*, vetting against *genome*.

    With *service* set, vetting routes through the serving layer
    (session registry, compiled-guide cache, admission control) and
    *genome* is ignored in favour of the registered *session_id*;
    otherwise *genome* is searched in-process (defaulting to the
    region itself when ``None`` — self-vetting a small construct).

    Raises :class:`~repro.errors.DesignError` when the region yields
    no candidate or the weight table is malformed — the same
    conditions the DSG check rules diagnose.
    """
    resolved = pam if isinstance(pam, Pam) else get_pam(pam)
    weights = weights if weights is not None else ScoreWeights()
    weights.require_valid(guide_length=guide_length)
    metrics = metrics if metrics is not None else Metrics()
    with metrics.span("design.enumerate", pam=resolved.name):
        candidates = enumerate_candidates(
            region, resolved, guide_length=guide_length
        )
    metrics.incr("design.candidates", len(candidates))
    if not candidates:
        raise DesignError(
            f"region yields no {resolved.name} candidate of length {guide_length} "
            f"(rule DSG001)"
        )
    vetted: VetResult
    if service is not None:
        vetted = vet_candidates_via_service(
            candidates,
            service,
            budget or SearchBudget(),
            resolved,
            session_id=session_id,
            request_id=request_id,
            timeout_seconds=timeout_seconds,
            metrics=metrics,
        )
    else:
        vetted = vet_candidates(
            candidates,
            genome if genome is not None else region,
            budget or SearchBudget(),
            resolved,
            workers=workers,
            chunk_length=chunk_length,
            kernel=kernel,
            metrics=metrics,
        )
    with metrics.span("design.score", candidates=len(candidates)):
        ranked = score_candidates(
            candidates, resolved, vetted.hits_by_candidate, weights
        )
    return DesignReport(
        pam=resolved,
        guide_length=guide_length,
        budget=budget or SearchBudget(),
        weights=weights,
        ranked=ranked,
        hits_by_candidate=vetted.hits_by_candidate,
        panel_guides=vetted.panel_guides,
        genome_passes=vetted.genome_passes,
        stats={**vetted.stats, "obs": metrics.snapshot()},
    )


#: Ranked-report TSV column layout (one row per candidate, best first).
DESIGN_TSV_HEADER = (
    "#rank\tname\tsequence\tstart\tend\tstrand\tprotospacer\tpam_site\tscore"
    "\tgc_fraction\tgc_score\thomopolymer_run\thomopolymer_score\tspecificity"
    "\toff_targets\trisk_sum\tseed_mismatched_hits\tdistal_only_hits"
)


def render_design_tsv(report: DesignReport) -> str:
    """The ranked report as a TSV document (deterministic bytes)."""
    lines = [DESIGN_TSV_HEADER]
    for rank, score in enumerate(report.ranked, start=1):
        candidate = score.candidate
        lines.append(
            "\t".join(
                (
                    str(rank),
                    candidate.name,
                    candidate.sequence_name,
                    str(candidate.start),
                    str(candidate.end),
                    candidate.strand,
                    candidate.protospacer,
                    candidate.pam_site,
                    f"{score.total:.6f}",
                    f"{score.gc_fraction:.4f}",
                    f"{score.gc_score:.4f}",
                    str(score.homopolymer_run),
                    f"{score.homopolymer_score:.4f}",
                    f"{score.specificity:.6f}",
                    str(score.off_targets),
                    f"{score.risk_sum:.6f}",
                    str(score.seed_mismatched_hits),
                    str(score.distal_only_hits),
                )
            )
        )
    return "\n".join(lines) + "\n"


def _score_to_json(score: CandidateScore) -> dict[str, Any]:
    candidate = score.candidate
    return {
        "name": candidate.name,
        "sequence": candidate.sequence_name,
        "start": candidate.start,
        "end": candidate.end,
        "strand": candidate.strand,
        "protospacer": candidate.protospacer,
        "pam_site": candidate.pam_site,
        "score": score.total,
        "gc_fraction": score.gc_fraction,
        "gc_score": score.gc_score,
        "homopolymer_run": score.homopolymer_run,
        "homopolymer_score": score.homopolymer_score,
        "specificity": score.specificity,
        "off_targets": score.off_targets,
        "risk_sum": score.risk_sum,
        "seed_mismatched_hits": score.seed_mismatched_hits,
        "distal_only_hits": score.distal_only_hits,
    }


def report_to_json(report: DesignReport, *, include_hits: bool = True) -> dict[str, Any]:
    """The ranked report as a JSON-serialisable document.

    ``include_hits`` controls whether every candidate's full
    off-target set rides along (the wire form the ``design`` service
    op returns); the ranked rows always do.
    """
    document: dict[str, Any] = {
        "pam": {
            "name": report.pam.name,
            "pattern": report.pam.pattern,
            "side": report.pam.side,
            "nuclease": report.pam.nuclease,
        },
        "guide_length": report.guide_length,
        "budget": {
            "mismatches": report.budget.mismatches,
            "rna_bulges": report.budget.rna_bulges,
            "dna_bulges": report.budget.dna_bulges,
        },
        "candidates": report.num_candidates,
        "panel_guides": report.panel_guides,
        "genome_passes": report.genome_passes,
        "ranked": [_score_to_json(score) for score in report.ranked],
    }
    if include_hits:
        from ..service.server import hit_to_wire

        document["hits"] = {
            name: [hit_to_wire(hit) for hit in hits]
            for name, hits in sorted(report.hits_by_candidate.items())
        }
    return document


def design_report_rows(report: DesignReport) -> list[dict[str, Any]]:
    """The ranked rows alone (what tables and tests consume)."""
    return [_score_to_json(score) for score in report.ranked]
