"""Coalesced off-target vetting of a whole candidate panel.

The automata-processing economics the paper is built on: one streaming
pass of the reference serves every loaded automaton simultaneously.
Vetting therefore never runs one search per candidate — the entire
panel is compiled into a single multi-guide search whose one set of
genome passes answers every candidate at once, and the merged hit list
is fanned back out per candidate, bit-identical to what a solo
single-candidate search would have returned (the demux argument of
:mod:`repro.service.scheduler` applies unchanged: hit enumeration is
per-guide independent).

Candidates are deduplicated by content first — two candidates with the
same protospacer (a repeat in the target region) share one compiled
automaton and one scan, exactly like the serving layer's
content-canonical cache — then each candidate's hits are renamed back
to its own name.

Two execution paths share the fan-out logic:

* :func:`vet_candidates` — in-process, one
  :class:`~repro.core.parallel.ParallelSearch` over the reference;
* :func:`vet_candidates_via_service` — one coalesced query through an
  :class:`~repro.service.api.OffTargetService`, reusing its session
  registry, compiled-guide cache, and admission control.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Iterable, Sequence as SequenceType, Union

from ..core.compiler import SearchBudget
from ..core.bitparallel import DEFAULT_KERNEL
from ..core.parallel import ParallelSearch
from ..errors import DesignError
from ..genome.sequence import Sequence
from ..grna.guide import Guide
from ..grna.hit import OffTargetHit
from ..grna.pam import Pam
from ..obs import Metrics
from .enumerate import Candidate

if TYPE_CHECKING:  # imported lazily to keep design importable without service
    from ..service.api import OffTargetService

#: Content identity of a candidate: what determines its automaton.
PanelKey = tuple[str, str, str]


def panel_key(candidate: Candidate, pam: Pam) -> PanelKey:
    """The content key candidates share an automaton under."""
    return (candidate.protospacer, pam.pattern, pam.side)


@dataclass(frozen=True)
class VetResult:
    """The vetting stage's outcome: per-candidate off-target sets."""

    hits_by_candidate: dict[str, tuple[OffTargetHit, ...]]
    panel_guides: int
    genome_passes: int
    stats: dict[str, Any] = field(default_factory=dict)

    def hits_for(self, candidate: Candidate) -> tuple[OffTargetHit, ...]:
        return self.hits_by_candidate.get(candidate.name, ())


def build_panel(
    candidates: SequenceType[Candidate], pam: Pam
) -> tuple[tuple[Guide, ...], dict[str, str]]:
    """Deduplicate *candidates* into a panel of representative guides.

    Returns the representative guides (one per distinct protospacer
    content, named after the first candidate that carries it) and the
    candidate-name → representative-name mapping used to fan hits back
    out.
    """
    if not candidates:
        raise DesignError("cannot vet an empty candidate set")
    representatives: dict[PanelKey, Guide] = {}
    rep_of: dict[str, str] = {}
    for candidate in candidates:
        key = panel_key(candidate, pam)
        guide = representatives.get(key)
        if guide is None:
            guide = candidate.to_guide(pam)
            representatives[key] = guide
        rep_of[candidate.name] = guide.name
    return tuple(representatives.values()), rep_of


def _fan_out(
    candidates: SequenceType[Candidate],
    rep_of: dict[str, str],
    hits: Iterable[OffTargetHit],
) -> dict[str, tuple[OffTargetHit, ...]]:
    """Rename the panel's merged hits back to every candidate's name.

    Each candidate receives the hits of its representative, renamed
    and sorted — the same order a solo single-candidate search report
    produces.
    """
    by_rep: dict[str, list[OffTargetHit]] = {}
    for hit in hits:
        by_rep.setdefault(hit.guide_name, []).append(hit)
    return {
        candidate.name: tuple(
            sorted(
                replace(hit, guide_name=candidate.name)
                for hit in by_rep.get(rep_of[candidate.name], ())
            )
        )
        for candidate in candidates
    }


def vet_candidates(
    candidates: SequenceType[Candidate],
    genome: Union[Sequence, Iterable[Sequence]],
    budget: SearchBudget,
    pam: Pam,
    *,
    workers: int = 1,
    chunk_length: int = 1 << 20,
    kernel: str = DEFAULT_KERNEL,
    metrics: Metrics | None = None,
) -> VetResult:
    """One multi-guide genome pass answering the whole candidate panel."""
    metrics = metrics if metrics is not None else Metrics()
    sequences = [genome] if isinstance(genome, Sequence) else list(genome)
    if not sequences:
        raise DesignError("no reference sequences to vet against")
    panel, rep_of = build_panel(candidates, pam)
    metrics.gauge("design.panel_guides", len(panel))
    metrics.incr("design.vet.candidates", len(candidates))
    with metrics.span("design.vet", guides=len(panel)):
        executor = ParallelSearch(
            panel,
            budget,
            workers=workers,
            chunk_length=chunk_length,
            kernel=kernel,
        )
        metrics.incr("design.vet.genome_passes")
        merged = executor.search_many(sequences)
    return VetResult(
        hits_by_candidate=_fan_out(candidates, rep_of, merged),
        panel_guides=len(panel),
        genome_passes=1,
        stats={"candidates": len(candidates), "panel_guides": len(panel)},
    )


def vet_candidates_via_service(
    candidates: SequenceType[Candidate],
    service: "OffTargetService",
    budget: SearchBudget,
    pam: Pam,
    *,
    session_id: str = "default",
    request_id: str = "",
    timeout_seconds: float | None = None,
    metrics: Metrics | None = None,
) -> VetResult:
    """Vet the panel through the serving layer's coalescing scheduler.

    The deduplicated panel goes in as **one** query, so the scheduler's
    batching, capacity-pass splitting, compiled-guide cache, and
    admission control all apply; the result is fanned out exactly like
    the in-process path and is bit-identical to it.
    """
    metrics = metrics if metrics is not None else Metrics()
    panel, rep_of = build_panel(candidates, pam)
    metrics.gauge("design.panel_guides", len(panel))
    metrics.incr("design.vet.candidates", len(candidates))
    with metrics.span("design.vet.service", guides=len(panel)):
        result = service.query(
            panel,
            budget,
            session_id=session_id,
            request_id=request_id,
            timeout_seconds=timeout_seconds,
        )
    return VetResult(
        hits_by_candidate=_fan_out(candidates, rep_of, result.hits),
        panel_guides=len(panel),
        genome_passes=int(result.stats.get("passes", 1)),
        stats={
            "candidates": len(candidates),
            "panel_guides": len(panel),
            "service": dict(result.stats),
        },
    )
