"""Candidate protospacer enumeration over a target region.

A design run starts by finding every window of the target region that
a nuclease could actually cut: a guide-length protospacer with the
PAM motif adjacent on the correct side, on either strand. Candidates
are reported in **guide orientation** (the protospacer as the guide
would be synthesised) with their genomic span on the + strand of the
region, matching the coordinate conventions of
:class:`~repro.grna.hit.OffTargetHit`.

Strand geometry, spelled out because it is the easiest thing to ship
subtly wrong:

* 3' PAM, + strand: the window reads ``protospacer + PAM``.
* 3' PAM, − strand: the − strand site reads ``protospacer + PAM`` in
  its own 5'→3' direction, so on the + strand the window reads
  ``revcomp(PAM) + revcomp(protospacer)`` — the PAM sits at the
  *start* of the + strand window.
* 5' PAM, + strand: the window reads ``PAM + protospacer``.
* 5' PAM, − strand: the + strand window reads
  ``revcomp(protospacer) + revcomp(PAM)`` — the PAM sits at the *end*.

Ambiguity handling mirrors the search kernels: the protospacer must be
concrete ``ACGT`` (a candidate overlapping an ``N`` run cannot be
synthesised), while the PAM site is matched through
:meth:`~repro.grna.pam.Pam.matches`, where a genome ``N`` satisfies
only a pattern ``N`` position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Union

from .. import alphabet
from ..errors import DesignError
from ..genome.sequence import Sequence
from ..grna.guide import _MAX_LENGTH, Guide
from ..grna.pam import Pam, get_pam


@dataclass(frozen=True)
class Candidate:
    """One candidate protospacer found in the target region.

    Attributes
    ----------
    name:
        Deterministic identifier, unique within one enumeration:
        derived from the sequence name, start coordinate, and strand.
    protospacer:
        Concrete ``ACGT`` protospacer in guide orientation (5'→3' as
        the guide would be synthesised).
    pam_site:
        The concrete genomic bases under the PAM motif, in guide
        orientation.
    sequence_name:
        Name of the region sequence the candidate lies on.
    strand:
        ``"+"`` or ``"-"``.
    start, end:
        Half-open span of the **full site** (protospacer + PAM) on the
        + strand of the region, whatever the strand or PAM side.
    """

    name: str
    protospacer: str
    pam_site: str
    sequence_name: str
    strand: str
    start: int
    end: int

    @property
    def site_length(self) -> int:
        return self.end - self.start

    def to_guide(self, pam: Pam) -> Guide:
        """The :class:`Guide` that would be synthesised for this candidate.

        ``min_length`` is pinned to the candidate's own length so short
        (tru-gRNA) designs flow through every downstream layer that
        rebuilds guides — compiler, cache, wire — without tripping the
        default length floor.
        """
        return Guide(
            self.name, self.protospacer, pam, min_length=len(self.protospacer)
        )


def _candidate_name(sequence_name: str, start: int, strand: str) -> str:
    tag = "fwd" if strand == "+" else "rev"
    return f"{sequence_name}:{start}:{tag}"


def _scan_sequence(
    sequence: Sequence, pam: Pam, guide_length: int
) -> Iterator[Candidate]:
    """Yield candidates of one sequence, ordered by (start, strand)."""
    text = sequence.text
    window_length = guide_length + len(pam)
    pam_length = len(pam)
    for start in range(0, len(text) - window_length + 1):
        window = text[start : start + window_length]
        end = start + window_length
        if pam.side == "3prime":
            forward_proto, forward_pam = window[:guide_length], window[guide_length:]
            reverse_window = alphabet.reverse_complement(window)
            reverse_proto = reverse_window[:guide_length]
            reverse_pam = reverse_window[guide_length:]
        else:
            forward_pam, forward_proto = window[:pam_length], window[pam_length:]
            reverse_window = alphabet.reverse_complement(window)
            reverse_pam = reverse_window[:pam_length]
            reverse_proto = reverse_window[pam_length:]
        if alphabet.is_dna(forward_proto) and pam.matches(forward_pam):
            yield Candidate(
                name=_candidate_name(sequence.name, start, "+"),
                protospacer=forward_proto,
                pam_site=forward_pam,
                sequence_name=sequence.name,
                strand="+",
                start=start,
                end=end,
            )
        if alphabet.is_dna(reverse_proto) and pam.matches(reverse_pam):
            yield Candidate(
                name=_candidate_name(sequence.name, start, "-"),
                protospacer=reverse_proto,
                pam_site=reverse_pam,
                sequence_name=sequence.name,
                strand="-",
                start=start,
                end=end,
            )


def enumerate_candidates(
    region: Union[Sequence, Iterable[Sequence]],
    pam: Union[Pam, str] = "NGG",
    *,
    guide_length: int = 20,
) -> tuple[Candidate, ...]:
    """Every candidate protospacer in *region* for *pam*.

    Both strands are always scanned. Candidates are ordered by
    (sequence, start, strand) — forward before reverse at the same
    start — which is the deterministic order every downstream stage
    preserves.

    Raises :class:`~repro.errors.DesignError` for an unusable
    *guide_length* (< 1 or beyond the guide model's maximum).
    """
    resolved = pam if isinstance(pam, Pam) else get_pam(pam)
    if not isinstance(guide_length, int) or isinstance(guide_length, bool):
        raise DesignError(f"guide_length must be an integer, got {guide_length!r}")
    if not 1 <= guide_length <= _MAX_LENGTH:
        raise DesignError(
            f"guide_length {guide_length} outside [1, {_MAX_LENGTH}]"
        )
    sequences = [region] if isinstance(region, Sequence) else list(region)
    if not sequences:
        raise DesignError("no region sequences to enumerate")
    candidates: list[Candidate] = []
    for sequence in sequences:
        candidates.extend(_scan_sequence(sequence, resolved, guide_length))
    return tuple(candidates)
