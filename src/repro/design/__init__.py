"""`repro.design` — the guide-design pipeline as a first-class workload.

The paper frames automata processing as the engine inside a gRNA
*design* loop: pick candidate protospacers from a target region, vet
each against the whole genome, then rank what survives. This package
is that loop, built on the existing search stack:

1. **Enumeration** (:mod:`repro.design.enumerate`) scans a target
   region for every protospacer adjacent to a PAM — both strands, both
   PAM sides, arbitrary guide lengths including the <16 nt truncated
   case.
2. **Coalesced vetting** (:mod:`repro.design.vet`) compiles the whole
   candidate set into one guide panel and runs a *single* multi-guide
   off-target search — one genome pass for N candidates, never N
   passes — either in-process or through the serving layer's
   coalescing scheduler.
3. **Scoring** (:mod:`repro.design.score`) turns each candidate's
   sequence features and off-target hits into a deterministic
   composite score (GC% window, homopolymer runs, seed-aware
   position-weighted off-target risk) and ranks the panel.

:mod:`repro.design.pipeline` glues the stages together behind
:func:`run_design` and renders the ranked report as TSV/JSON.
"""

from __future__ import annotations

from .enumerate import Candidate, enumerate_candidates
from .pipeline import DesignReport, render_design_tsv, report_to_json, run_design
from .score import CandidateScore, ScoreWeights, score_candidates, weights_from_mapping
from .vet import VetResult, vet_candidates, vet_candidates_via_service

__all__ = [
    "Candidate",
    "CandidateScore",
    "DesignReport",
    "ScoreWeights",
    "VetResult",
    "enumerate_candidates",
    "render_design_tsv",
    "report_to_json",
    "run_design",
    "score_candidates",
    "vet_candidates",
    "vet_candidates_via_service",
    "weights_from_mapping",
]
