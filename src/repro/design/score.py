"""Deterministic candidate scoring and ranking.

The composite score follows the hybrid rule scores of the design tools
the related repos wrap (GC% window, homopolymer runs, off-target
specificity) with the position-dependence the off-target literature
established: a mismatch in the PAM-proximal *seed* region disrupts
cleavage far more than a distal one, so a seed-mismatched off-target
site contributes much less risk. Risk per hit is a CFD-style product
of per-position mismatch weights; candidate specificity aggregates the
panel MIT-style as ``1 / (1 + total risk)``.

Everything is pure arithmetic over the vetting stage's hit sets — no
randomness, no iteration-order dependence — so a design run is
reproducible bit-for-bit, which is what lets the service and CLI paths
be differentially tested against each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence as SequenceType

from .. import alphabet
from ..errors import DesignError
from ..grna.hit import OffTargetHit
from ..grna.pam import Pam
from .enumerate import Candidate

#: Tolerance for the component-weight sum check.
_WEIGHT_SUM_TOLERANCE = 1e-9


@dataclass(frozen=True)
class ScoreWeights:
    """The score-weight table of one design run.

    Component weights (``gc_weight`` + ``homopolymer_weight`` +
    ``specificity_weight``) must sum to 1; per-mismatch multipliers
    live in ``(0, 1]`` — a *smaller* value means a mismatch at that
    position disrupts cleavage more, so the site contributes less
    off-target risk.

    ``position_weights``, when given, is an explicit CFD-style
    per-position table ordered PAM-proximal first; it overrides the
    two-tier seed/distal model and must cover the guide length.
    """

    gc_weight: float = 0.25
    homopolymer_weight: float = 0.25
    specificity_weight: float = 0.5
    gc_min: float = 0.40
    gc_max: float = 0.70
    homopolymer_max_run: int = 4
    seed_length: int = 8
    seed_mismatch_weight: float = 0.2
    distal_mismatch_weight: float = 0.8
    bulge_weight: float = 0.3
    position_weights: tuple[float, ...] | None = None

    def problems(self, *, guide_length: int | None = None) -> list[str]:
        """Well-formedness findings, empty when the table is usable.

        The list (not an exception) is the checker-facing form: the
        DSG002 rule renders every finding, while
        :meth:`require_valid` raises on the first use.
        """
        found: list[str] = []
        components = (
            ("gc_weight", self.gc_weight),
            ("homopolymer_weight", self.homopolymer_weight),
            ("specificity_weight", self.specificity_weight),
        )
        for name, value in components:
            if not 0.0 <= value <= 1.0:
                found.append(f"{name} must be in [0, 1], got {value!r}")
        total = sum(value for _, value in components)
        if abs(total - 1.0) > _WEIGHT_SUM_TOLERANCE:
            found.append(f"component weights must sum to 1, got {total!r}")
        if not 0.0 <= self.gc_min <= self.gc_max <= 1.0:
            found.append(
                f"GC window must satisfy 0 <= gc_min <= gc_max <= 1, got "
                f"[{self.gc_min!r}, {self.gc_max!r}]"
            )
        if self.homopolymer_max_run < 1:
            found.append(
                f"homopolymer_max_run must be >= 1, got {self.homopolymer_max_run!r}"
            )
        if self.seed_length < 0:
            found.append(f"seed_length must be >= 0, got {self.seed_length!r}")
        for name, value in (
            ("seed_mismatch_weight", self.seed_mismatch_weight),
            ("distal_mismatch_weight", self.distal_mismatch_weight),
            ("bulge_weight", self.bulge_weight),
        ):
            if not 0.0 < value <= 1.0:
                found.append(f"{name} must be in (0, 1], got {value!r}")
        if self.position_weights is not None:
            for index, value in enumerate(self.position_weights):
                if not 0.0 < value <= 1.0:
                    found.append(
                        f"position_weights[{index}] must be in (0, 1], got {value!r}"
                    )
            if guide_length is not None and len(self.position_weights) < guide_length:
                found.append(
                    f"position_weights covers {len(self.position_weights)} positions "
                    f"but the guide length is {guide_length}"
                )
        return found

    def require_valid(self, *, guide_length: int | None = None) -> None:
        """Raise :class:`DesignError` when the table is malformed."""
        found = self.problems(guide_length=guide_length)
        if found:
            raise DesignError(
                "malformed score-weight table: " + "; ".join(found)
            )

    def mismatch_weight(self, pam_distance: int) -> float:
        """Risk multiplier of one mismatch *pam_distance* bases from the PAM."""
        if self.position_weights is not None and pam_distance < len(
            self.position_weights
        ):
            return self.position_weights[pam_distance]
        if pam_distance < self.seed_length:
            return self.seed_mismatch_weight
        return self.distal_mismatch_weight


#: Wire/CLI key set accepted by :func:`weights_from_mapping`.
_WEIGHT_FIELDS = {
    "gc_weight": float,
    "homopolymer_weight": float,
    "specificity_weight": float,
    "gc_min": float,
    "gc_max": float,
    "homopolymer_max_run": int,
    "seed_length": int,
    "seed_mismatch_weight": float,
    "distal_mismatch_weight": float,
    "bulge_weight": float,
}


def weights_from_mapping(
    raw: Mapping[str, Any] | None, *, guide_length: int | None = None
) -> ScoreWeights:
    """Build a validated :class:`ScoreWeights` from a wire/CLI mapping.

    Unknown keys and mistyped values raise :class:`DesignError` (they
    are operator input, not programmer input); the built table is then
    checked with :meth:`ScoreWeights.require_valid`.
    """
    if raw is None:
        weights = ScoreWeights()
        weights.require_valid(guide_length=guide_length)
        return weights
    kwargs: dict[str, Any] = {}
    for key, value in raw.items():
        if key == "position_weights":
            if not isinstance(value, (list, tuple)) or not all(
                isinstance(item, (int, float)) and not isinstance(item, bool)
                for item in value
            ):
                raise DesignError(
                    f"position_weights must be a list of numbers, got {value!r}"
                )
            kwargs[key] = tuple(float(item) for item in value)
            continue
        caster = _WEIGHT_FIELDS.get(key)
        if caster is None:
            raise DesignError(
                f"unknown score-weight key {key!r}; known: "
                f"{sorted(_WEIGHT_FIELDS)} + ['position_weights']"
            )
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise DesignError(f"score weight {key!r} must be a number, got {value!r}")
        kwargs[key] = caster(value)
    weights = ScoreWeights(**kwargs)
    weights.require_valid(guide_length=guide_length)
    return weights


@dataclass(frozen=True)
class CandidateScore:
    """One candidate's ranked outcome with its per-component breakdown."""

    candidate: Candidate
    total: float
    gc_fraction: float
    gc_score: float
    homopolymer_run: int
    homopolymer_score: float
    specificity: float
    off_targets: int
    risk_sum: float
    seed_mismatched_hits: int
    distal_only_hits: int


def gc_fraction(protospacer: str) -> float:
    """Fraction of G/C bases in a concrete protospacer."""
    if not protospacer:
        return 0.0
    return sum(base in "GC" for base in protospacer) / len(protospacer)


def longest_homopolymer_run(protospacer: str) -> int:
    """Length of the longest single-base run."""
    best = 0
    run = 0
    previous = ""
    for base in protospacer:
        run = run + 1 if base == previous else 1
        previous = base
        best = max(best, run)
    return best


def _gc_score(fraction: float, weights: ScoreWeights) -> float:
    """1.0 inside the GC window, linear falloff outside.

    The falloff scale is 0.25 GC-fraction units: a candidate 25
    percentage points outside the window scores 0.
    """
    if weights.gc_min <= fraction <= weights.gc_max:
        return 1.0
    distance = (
        weights.gc_min - fraction
        if fraction < weights.gc_min
        else fraction - weights.gc_max
    )
    return max(0.0, 1.0 - distance / 0.25)


def _homopolymer_score(run: int, weights: ScoreWeights) -> float:
    """1.0 up to the run cap, 0.25 penalty per extra base beyond it."""
    excess = max(0, run - weights.homopolymer_max_run)
    return max(0.0, 1.0 - 0.25 * excess)


def _pam_distances(candidate: Candidate, pam: Pam, hit: OffTargetHit) -> list[int]:
    """PAM distances of the mismatched protospacer positions of *hit*.

    The hit's ``site`` is stored in guide orientation, so positions
    compare directly against the candidate's target pattern. Returns
    an empty list for bulged or length-mismatched sites, which cannot
    be aligned positionally — the caller prices those with the
    fallback product.
    """
    guide = candidate.to_guide(pam)
    pattern = guide.target_pattern
    if hit.rna_bulges or hit.dna_bulges or len(hit.site) != len(pattern):
        return []
    length = len(candidate.protospacer)
    distances = []
    for offset, index in enumerate(guide.protospacer_positions()):
        if not alphabet.iupac_matches(pattern[index], hit.site[index]):
            # PAM-proximal distance: 3' PAMs sit after the protospacer,
            # 5' PAMs before it.
            distance = length - 1 - offset if pam.side == "3prime" else offset
            distances.append(distance)
    return distances


def hit_risk(
    candidate: Candidate, pam: Pam, hit: OffTargetHit, weights: ScoreWeights
) -> tuple[float, bool]:
    """(risk contribution, had-a-seed-mismatch) of one off-target hit.

    Risk is the CFD-style product of the per-position mismatch
    weights. Bulged sites cannot be positionally aligned, so they fall
    back to ``bulge_weight^bulges * distal_weight^mismatches`` — the
    conservative (risk-heavier) tier.
    """
    bulges = hit.rna_bulges + hit.dna_bulges
    if bulges or len(hit.site) != candidate.site_length:
        risk = (weights.bulge_weight**bulges) * (
            weights.distal_mismatch_weight**hit.mismatches
        )
        return risk, False
    distances = _pam_distances(candidate, pam, hit)
    risk = 1.0
    seed_mismatch = False
    for distance in distances:
        risk *= weights.mismatch_weight(distance)
        if distance < weights.seed_length:
            seed_mismatch = True
    return risk, seed_mismatch


def _is_own_site(candidate: Candidate, hit: OffTargetHit) -> bool:
    """True when *hit* is the candidate's own on-target site."""
    return (
        hit.edits == 0
        and hit.sequence_name == candidate.sequence_name
        and hit.strand == candidate.strand
        and hit.start == candidate.start
        and hit.end == candidate.end
    )


def score_candidate(
    candidate: Candidate,
    pam: Pam,
    hits: SequenceType[OffTargetHit],
    weights: ScoreWeights,
) -> CandidateScore:
    """Score one candidate against its vetted off-target set.

    The candidate's own on-target site (an exact, coordinate-identical
    hit — present whenever the vetting reference contains the design
    region) is excluded from the risk sum: cutting the intended site
    is the point, not an off-target.
    """
    fraction = gc_fraction(candidate.protospacer)
    run = longest_homopolymer_run(candidate.protospacer)
    risk_sum = 0.0
    off_targets = 0
    seed_mismatched = 0
    distal_only = 0
    for hit in hits:
        if _is_own_site(candidate, hit):
            continue
        off_targets += 1
        risk, seed_mismatch = hit_risk(candidate, pam, hit, weights)
        risk_sum += risk
        if seed_mismatch:
            seed_mismatched += 1
        else:
            distal_only += 1
    gc_component = _gc_score(fraction, weights)
    homopolymer_component = _homopolymer_score(run, weights)
    specificity = 1.0 / (1.0 + risk_sum)
    total = (
        weights.gc_weight * gc_component
        + weights.homopolymer_weight * homopolymer_component
        + weights.specificity_weight * specificity
    )
    return CandidateScore(
        candidate=candidate,
        total=total,
        gc_fraction=fraction,
        gc_score=gc_component,
        homopolymer_run=run,
        homopolymer_score=homopolymer_component,
        specificity=specificity,
        off_targets=off_targets,
        risk_sum=risk_sum,
        seed_mismatched_hits=seed_mismatched,
        distal_only_hits=distal_only,
    )


def score_candidates(
    candidates: SequenceType[Candidate],
    pam: Pam,
    hits_by_candidate: Mapping[str, SequenceType[OffTargetHit]],
    weights: ScoreWeights,
) -> tuple[CandidateScore, ...]:
    """Score and rank the panel: best first, deterministic tie-break.

    Ties break on (sequence, start, strand, name) so equal-scoring
    candidates rank in genomic order, run after run.
    """
    weights.require_valid(
        guide_length=len(candidates[0].protospacer) if candidates else None
    )
    scored = [
        score_candidate(
            candidate, pam, hits_by_candidate.get(candidate.name, ()), weights
        )
        for candidate in candidates
    ]
    scored.sort(
        key=lambda score: (
            -score.total,
            score.candidate.sequence_name,
            score.candidate.start,
            score.candidate.strand,
            score.candidate.name,
        )
    )
    return tuple(scored)
