"""Run records and result sets.

A :class:`RunRecord` captures one (tool, workload) measurement —
modeled breakdown, functional hit count, measured host seconds — in a
form the speedup and table modules consume. :class:`ResultSet` indexes
records and supports the groupings the experiment harness prints.

The CLI's ``--stats-json`` output loads back into this form through
:func:`record_from_stats_json` / :func:`load_stats_json`, so per-shard
timings, retry counts, and report-rate metrics from production runs
feed the same analysis pipeline as the modeled experiments.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Union

from ..errors import ReproError
from ..platforms.timing import TimingBreakdown


@dataclass(frozen=True)
class RunRecord:
    """One tool's result on one workload configuration."""

    tool: str
    workload: str
    genome_length: int
    num_guides: int
    mismatches: int
    rna_bulges: int
    dna_bulges: int
    modeled: TimingBreakdown
    num_hits: int
    measured_seconds: float = 0.0
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def modeled_total(self) -> float:
        return self.modeled.total_seconds

    @property
    def modeled_kernel(self) -> float:
        return self.modeled.kernel_with_reports_seconds

    @property
    def budget_label(self) -> str:
        return f"{self.mismatches}mm/{self.rna_bulges}rb/{self.dna_bulges}db"


def record_from_stats_json(payload: dict, *, workload: str = "cli") -> RunRecord:
    """Build a :class:`RunRecord` from a CLI ``--stats-json`` payload.

    The payload's search mode decides the measured time: sharded runs
    sum their per-sequence wall seconds (and surface retry/timeout
    totals in ``extra``), streaming runs sum chunk walls, and engine
    runs carry their measured kernel seconds plus modeled totals.
    """
    if not isinstance(payload, dict) or "num_hits" not in payload:
        raise ReproError("stats payload is not a --stats-json dict")
    mode = payload.get("mode", "engine")
    measured = 0.0
    extra: dict[str, Any] = {"mode": mode, "stats": payload}
    if mode.startswith("sharded"):
        runs = payload.get("parallel", [])
        measured = sum(run.get("wall_seconds", 0.0) for run in runs)
        extra["retries"] = sum(
            run.get("fault_tolerance", {}).get("retries", 0) for run in runs
        )
        extra["timeouts"] = sum(
            run.get("fault_tolerance", {}).get("timeouts", 0) for run in runs
        )
    elif mode == "streaming":
        runs = payload.get("streaming", [])
        measured = sum(run.get("wall_seconds", 0.0) for run in runs)
    else:
        measured = payload.get("measured_seconds", 0.0)
    extra["report_events_per_mbp"] = payload.get("report_events_per_mbp", 0.0)
    budget = payload.get("budget", {})
    modeled = TimingBreakdown(
        platform=payload.get("engine", "host"),
        setup_seconds=0.0,
        kernel_seconds=payload.get("modeled_seconds", 0.0),
    )
    return RunRecord(
        tool=payload.get("engine", "host"),
        workload=workload,
        genome_length=payload.get("genome_length", 0),
        num_guides=payload.get("num_guides", 1),
        mismatches=budget.get("mismatches", 0),
        rna_bulges=budget.get("rna_bulges", 0),
        dna_bulges=budget.get("dna_bulges", 0),
        modeled=modeled,
        num_hits=payload["num_hits"],
        measured_seconds=measured,
        extra=extra,
    )


def load_stats_json(path: Union[str, Path], *, workload: str = "cli") -> RunRecord:
    """Read one CLI ``--stats-json`` file into a :class:`RunRecord`."""
    with open(path, "r", encoding="ascii") as handle:
        return record_from_stats_json(json.load(handle), workload=workload)


class ResultSet:
    """An indexed collection of run records."""

    def __init__(self, records: Iterable[RunRecord] = ()) -> None:
        self._records: list[RunRecord] = list(records)

    def add(self, record: RunRecord) -> None:
        self._records.append(record)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def tools(self) -> list[str]:
        """Distinct tool names, in insertion order."""
        return list(dict.fromkeys(record.tool for record in self._records))

    def workloads(self) -> list[str]:
        """Distinct workload names, in insertion order."""
        return list(dict.fromkeys(record.workload for record in self._records))

    def get(self, tool: str, workload: str | None = None) -> RunRecord:
        """The unique record for (tool, workload)."""
        matches = [
            record
            for record in self._records
            if record.tool == tool and (workload is None or record.workload == workload)
        ]
        if not matches:
            raise ReproError(f"no record for tool={tool!r} workload={workload!r}")
        if len(matches) > 1:
            raise ReproError(f"ambiguous record for tool={tool!r} workload={workload!r}")
        return matches[0]

    def for_workload(self, workload: str) -> "ResultSet":
        return ResultSet(r for r in self._records if r.workload == workload)

    def for_tool(self, tool: str) -> "ResultSet":
        return ResultSet(r for r in self._records if r.tool == tool)

    def agreement(self) -> bool:
        """True when every tool found the same hit count per workload.

        Hit-count equality is the cheap invariant the harness checks on
        every run; the test suite checks full hit-set equality.
        """
        for workload in self.workloads():
            counts = {record.num_hits for record in self.for_workload(workload)}
            if len(counts) > 1:
                return False
        return True
