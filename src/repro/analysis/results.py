"""Run records and result sets.

A :class:`RunRecord` captures one (tool, workload) measurement —
modeled breakdown, functional hit count, measured host seconds — in a
form the speedup and table modules consume. :class:`ResultSet` indexes
records and supports the groupings the experiment harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from ..errors import ReproError
from ..platforms.timing import TimingBreakdown


@dataclass(frozen=True)
class RunRecord:
    """One tool's result on one workload configuration."""

    tool: str
    workload: str
    genome_length: int
    num_guides: int
    mismatches: int
    rna_bulges: int
    dna_bulges: int
    modeled: TimingBreakdown
    num_hits: int
    measured_seconds: float = 0.0
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def modeled_total(self) -> float:
        return self.modeled.total_seconds

    @property
    def modeled_kernel(self) -> float:
        return self.modeled.kernel_with_reports_seconds

    @property
    def budget_label(self) -> str:
        return f"{self.mismatches}mm/{self.rna_bulges}rb/{self.dna_bulges}db"


class ResultSet:
    """An indexed collection of run records."""

    def __init__(self, records: Iterable[RunRecord] = ()) -> None:
        self._records: list[RunRecord] = list(records)

    def add(self, record: RunRecord) -> None:
        self._records.append(record)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def tools(self) -> list[str]:
        """Distinct tool names, in insertion order."""
        return list(dict.fromkeys(record.tool for record in self._records))

    def workloads(self) -> list[str]:
        """Distinct workload names, in insertion order."""
        return list(dict.fromkeys(record.workload for record in self._records))

    def get(self, tool: str, workload: str | None = None) -> RunRecord:
        """The unique record for (tool, workload)."""
        matches = [
            record
            for record in self._records
            if record.tool == tool and (workload is None or record.workload == workload)
        ]
        if not matches:
            raise ReproError(f"no record for tool={tool!r} workload={workload!r}")
        if len(matches) > 1:
            raise ReproError(f"ambiguous record for tool={tool!r} workload={workload!r}")
        return matches[0]

    def for_workload(self, workload: str) -> "ResultSet":
        return ResultSet(r for r in self._records if r.workload == workload)

    def for_tool(self, tool: str) -> "ResultSet":
        return ResultSet(r for r in self._records if r.tool == tool)

    def agreement(self) -> bool:
        """True when every tool found the same hit count per workload.

        Hit-count equality is the cheap invariant the harness checks on
        every run; the test suite checks full hit-set equality.
        """
        for workload in self.workloads():
            counts = {record.num_hits for record in self.for_workload(workload)}
            if len(counts) > 1:
                return False
        return True
