"""Fixed-width table and series rendering for the benchmark harness.

Every benchmark prints the rows/series its table or figure reports via
these helpers, so `pytest benchmarks/ --benchmark-only` output reads as
the regenerated evaluation section.
"""

from __future__ import annotations

from typing import Any, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str = "",
) -> str:
    """Render an aligned fixed-width table."""
    cells = [[_format_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[Any],
    series: dict[str, Sequence[Any]],
    *,
    title: str = "",
) -> str:
    """Render figure data: one x column plus one column per series."""
    headers = [x_label, *series]
    rows = [
        [x, *(values[index] for values in series.values())]
        for index, x in enumerate(x_values)
    ]
    return render_table(headers, rows, title=title)
