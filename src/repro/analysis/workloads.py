"""Standard evaluation workloads and the cross-platform harness.

A :class:`StandardWorkload` pins everything one experiment row needs:
a deterministic synthetic reference for the functional runs, a modeled
reference length (human-genome scale by default) for the analytic
times, a guide set sampled from the reference, and a search budget.

:func:`evaluate_platforms` is the harness behind the headline tables:
it runs the functional search once, scales the observed report traffic
to the modeled genome length (valid because every platform model is
linear in genome length), and asks every engine and baseline model for
its timing breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property

from ..baselines.base import available_baselines, get_baseline
from ..core import matcher
from ..core.compiler import CompiledLibrary, SearchBudget, compile_library
from ..engines.base import available_engines, build_profile, get_engine
from ..genome.sequence import Sequence
from ..genome.synthetic import random_genome
from ..grna.library import GuideLibrary, sample_guides_from_genome
from ..platforms.reporting import ReportTraffic
from ..platforms.timing import (
    WorkloadProfile,
    cas_offinder_time,
    casot_time,
    expected_casot_candidates,
)
from ..platforms.spec import CasOffinderSpec, CasotSpec
from .results import ResultSet, RunRecord

#: human reference genome scale (hg19 ≈ 3.1 Gbp) used for modeled times.
HUMAN_GENOME_LENGTH = 3_100_000_000


@dataclass(frozen=True)
class StandardWorkload:
    """One fully-specified evaluation workload."""

    name: str = "default"
    modeled_genome_length: int = HUMAN_GENOME_LENGTH
    functional_genome_length: int = 2_000_000
    num_guides: int = 10
    budget: SearchBudget = SearchBudget(mismatches=3)
    seed: int = 20180224  # HPCA'18 dates, for determinism with a wink
    gc_content: float = 0.41
    #: process count for the functional hit enumeration; 1 = the
    #: single-threaded kernel, anything else shards across a pool
    #: (results are identical either way — the differential suite pins it).
    functional_workers: int = 1

    @cached_property
    def genome(self) -> Sequence:
        """The functional synthetic reference."""
        return random_genome(
            self.functional_genome_length,
            seed=self.seed,
            gc_content=self.gc_content,
            name=f"chrSyn_{self.name}",
        )

    @cached_property
    def library(self) -> GuideLibrary:
        """Guides sampled from the reference (each has an on-target hit)."""
        return sample_guides_from_genome(
            self.genome, self.num_guides, seed=self.seed + 1
        )

    @cached_property
    def compiled(self) -> CompiledLibrary:
        return compile_library(self.library, self.budget)

    @property
    def scale(self) -> float:
        """Modeled-over-functional genome length ratio."""
        return self.modeled_genome_length / self.functional_genome_length

    def with_budget(self, budget: SearchBudget) -> "StandardWorkload":
        return replace(self, name=f"{self.name}_b{budget.mismatches}{budget.rna_bulges}{budget.dna_bulges}", budget=budget)

    def with_guides(self, num_guides: int) -> "StandardWorkload":
        return replace(self, name=f"{self.name}_g{num_guides}", num_guides=num_guides)

    def with_workers(self, workers: int) -> "StandardWorkload":
        """Same workload, functional path sharded across *workers* processes."""
        return replace(self, functional_workers=workers)

    def modeled_profile(self) -> WorkloadProfile:
        """The workload profile at modeled (gigabase) scale."""
        hits = self.functional_hits
        functional = build_profile(self.genome, self.compiled, hits)
        scaled_traffic = ReportTraffic(
            events=int(functional.report_traffic.events * self.scale),
            cycles_with_reports=int(
                functional.report_traffic.cycles_with_reports * self.scale
            ),
        )
        return WorkloadProfile(
            genome_length=self.modeled_genome_length,
            num_guides=functional.num_guides,
            site_length=functional.site_length,
            total_stes=functional.total_stes,
            total_transitions=functional.total_transitions,
            expected_active=functional.expected_active,
            report_traffic=scaled_traffic,
            seed_candidates=expected_casot_candidates(
                self.modeled_genome_length,
                self.num_guides,
                len(self.library[0]),
                self.budget.mismatches,
            ),
        )

    @cached_property
    def functional_run(self) -> tuple[list, dict]:
        """The functional hit enumeration plus its observability stats.

        Sharded runs carry the full :class:`~repro.core.parallel`
        stats (per-shard timings, retries, recovery paths); the serial
        kernel reports its wall time and report rate in the same shape
        the CLI's ``--stats-json`` uses.
        """
        if self.functional_workers != 1:
            from ..core.parallel import ParallelSearch

            hits, stats = ParallelSearch(
                self.library, self.budget, workers=self.functional_workers
            ).search_with_stats(self.genome)
            return hits, stats
        import time

        started = time.perf_counter()
        hits = matcher.find_hits(self.genome, self.library, self.budget)
        wall = time.perf_counter() - started
        stats = {
            "workers": 1,
            "pooled": False,
            "wall_seconds": wall,
            "kernel_positions": len(self.genome),
            "report_events": len(hits),
        }
        return hits, stats

    @property
    def functional_hits(self):
        """The deduplicated hit list on the functional reference."""
        return self.functional_run[0]

    @property
    def functional_stats(self) -> dict:
        """Observability stats of the functional enumeration."""
        return self.functional_run[1]


ENGINE_TOOLS = ("hyperscan", "infant2", "fpga", "ap")
BASELINE_TOOLS = ("cas-offinder", "casot")

#: The calibration workload: ~hg-scale, one experiment's worth of guides.
DEFAULT_WORKLOAD = StandardWorkload()


def evaluate_platforms(
    workload: StandardWorkload,
    *,
    tools: tuple[str, ...] = ENGINE_TOOLS + BASELINE_TOOLS,
    run_functional_baselines: bool = False,
) -> ResultSet:
    """Modeled times for every tool on *workload*, as a result set.

    Engines share one functional hit enumeration; baselines are run
    functionally only on request (CasOT's functional path is the slow
    one — that is the point of the paper). When not run, a baseline's
    ``num_hits`` is the automata hit count restricted to the budget the
    baseline supports, and its record is marked ``functional=False``.
    """
    profile = workload.modeled_profile()
    hits = workload.functional_hits
    results = ResultSet()

    def record(tool: str, modeled, num_hits: int, *, functional: bool, extra=None) -> None:
        results.add(
            RunRecord(
                tool=tool,
                workload=workload.name,
                genome_length=workload.modeled_genome_length,
                num_guides=workload.num_guides,
                mismatches=workload.budget.mismatches,
                rna_bulges=workload.budget.rna_bulges,
                dna_bulges=workload.budget.dna_bulges,
                modeled=modeled,
                num_hits=num_hits,
                extra={"functional": functional, **(extra or {})},
            )
        )

    functional_summary = {
        "workers": workload.functional_workers,
        "wall_seconds": workload.functional_stats.get("wall_seconds", 0.0),
        "retries": workload.functional_stats.get("fault_tolerance", {}).get(
            "retries", 0
        ),
    }
    for tool in tools:
        if tool in available_engines():
            engine = get_engine(tool)
            record(
                tool,
                engine.model_time(profile),
                len(hits),
                functional=True,
                extra={
                    **engine.platform_stats(profile, workload.compiled),
                    "functional_run": functional_summary,
                },
            )
        elif tool == "cas-offinder":
            if run_functional_baselines and not workload.budget.has_bulges:
                result = get_baseline(tool).search(
                    workload.genome, workload.library, workload.budget
                )
                num_hits, functional = result.num_hits, True
            else:
                num_hits, functional = len(hits), False
            record(tool, cas_offinder_time(profile, CasOffinderSpec()), num_hits, functional=functional)
        elif tool == "casot":
            if run_functional_baselines:
                result = get_baseline(tool).search(
                    workload.genome, workload.library, workload.budget
                )
                num_hits, functional = result.num_hits, True
            else:
                num_hits, functional = len(hits), False
            record(tool, casot_time(profile, CasotSpec()), num_hits, functional=functional)
        else:
            raise ValueError(f"unknown tool {tool!r}")
    return results
