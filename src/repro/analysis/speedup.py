"""Speedup computation against the baselines.

The paper's headline numbers are speedups of each automata platform
over Cas-OFFinder and CasOT; these helpers compute them from a
:class:`~repro.analysis.results.ResultSet`, end-to-end or kernel-only
(the AP-vs-FPGA claim is kernel-only).
"""

from __future__ import annotations

from ..errors import ReproError
from .results import ResultSet


def speedup_vs(
    results: ResultSet,
    tool: str,
    baseline: str,
    *,
    workload: str | None = None,
    kernel_only: bool = False,
) -> float:
    """Speedup of *tool* over *baseline* (>1 means *tool* is faster)."""
    tool_record = results.get(tool, workload)
    baseline_record = results.get(baseline, workload)
    tool_seconds = (
        tool_record.modeled_kernel if kernel_only else tool_record.modeled_total
    )
    base_seconds = (
        baseline_record.modeled_kernel if kernel_only else baseline_record.modeled_total
    )
    if tool_seconds <= 0:
        raise ReproError(f"{tool} has non-positive modeled time")
    return base_seconds / tool_seconds


def speedup_matrix(
    results: ResultSet,
    baselines: list[str],
    *,
    workload: str | None = None,
    kernel_only: bool = False,
) -> dict[str, dict[str, float]]:
    """``matrix[tool][baseline]`` speedups for every non-baseline tool."""
    matrix: dict[str, dict[str, float]] = {}
    for tool in results.tools():
        if tool in baselines:
            continue
        matrix[tool] = {
            baseline: speedup_vs(
                results, tool, baseline, workload=workload, kernel_only=kernel_only
            )
            for baseline in baselines
        }
    return matrix
