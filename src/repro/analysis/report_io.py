"""Hit-report serialisation: BED and the original tools' TSV dialect.

Two interchange formats:

* **BED6** — standard genome-browser rows (name = guide, score =
  mismatches). Lossy (no bulge counts or site text); write-only.
* **offtarget TSV** — the column layout the original off-target tools
  emit (guide, site, chromosome, position, strand, edit counts), which
  round-trips every field of :class:`~repro.grna.hit.OffTargetHit`.
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Iterable, Union

from ..errors import ReproError
from ..grna.hit import OffTargetHit

PathOrHandle = Union[str, Path, IO[str]]

_TSV_HEADER = (
    "#guide\tsite\tsequence\tstart\tend\tstrand\tmismatches\trna_bulges\tdna_bulges"
)


def _writer(destination: PathOrHandle):
    if isinstance(destination, (str, Path)):
        return open(destination, "w", encoding="ascii"), True
    return destination, False


def write_bed(hits: Iterable[OffTargetHit], destination: PathOrHandle) -> int:
    """Write hits as BED6 rows; returns the row count."""
    handle, owned = _writer(destination)
    try:
        count = 0
        for hit in hits:
            handle.write(hit.to_bed_line() + "\n")
            count += 1
        return count
    finally:
        if owned:
            handle.close()


def write_tsv(hits: Iterable[OffTargetHit], destination: PathOrHandle) -> int:
    """Write hits in the offtarget TSV dialect; returns the row count."""
    handle, owned = _writer(destination)
    try:
        handle.write(_TSV_HEADER + "\n")
        count = 0
        for hit in hits:
            handle.write(
                "\t".join(
                    (
                        hit.guide_name,
                        hit.site or ".",
                        hit.sequence_name,
                        str(hit.start),
                        str(hit.end),
                        hit.strand,
                        str(hit.mismatches),
                        str(hit.rna_bulges),
                        str(hit.dna_bulges),
                    )
                )
                + "\n"
            )
            count += 1
        return count
    finally:
        if owned:
            handle.close()


def read_tsv(source: PathOrHandle) -> list[OffTargetHit]:
    """Read hits back from the offtarget TSV dialect."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii") as handle:
            lines = handle.readlines()
    else:
        lines = list(source)
    hits: list[OffTargetHit] = []
    for number, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        fields = line.split("\t")
        if len(fields) != 9:
            raise ReproError(f"TSV line {number}: expected 9 fields, got {len(fields)}")
        try:
            hits.append(
                OffTargetHit(
                    guide_name=fields[0],
                    site="" if fields[1] == "." else fields[1],
                    sequence_name=fields[2],
                    start=int(fields[3]),
                    end=int(fields[4]),
                    strand=fields[5],
                    mismatches=int(fields[6]),
                    rna_bulges=int(fields[7]),
                    dna_bulges=int(fields[8]),
                )
            )
        except ValueError as exc:
            raise ReproError(f"TSV line {number}: {exc}") from exc
    return hits
