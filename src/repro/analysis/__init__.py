"""Result aggregation, speedup computation, and experiment harness helpers."""

from .results import RunRecord, ResultSet
from .speedup import speedup_matrix, speedup_vs
from .tables import render_table, render_series
from .workloads import StandardWorkload, DEFAULT_WORKLOAD, evaluate_platforms
from .report_io import write_bed, write_tsv, read_tsv

__all__ = [
    "RunRecord",
    "ResultSet",
    "speedup_matrix",
    "speedup_vs",
    "render_table",
    "render_series",
    "StandardWorkload",
    "DEFAULT_WORKLOAD",
    "evaluate_platforms",
    "write_bed",
    "write_tsv",
    "read_tsv",
]
