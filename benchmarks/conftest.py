"""Shared fixtures and helpers for the benchmark/experiment harness.

Every benchmark regenerates one table or figure of the paper's
evaluation: it prints the rows/series to stdout and also writes them to
``benchmarks/results/<experiment>.txt`` so the regenerated evaluation
survives output capturing. Run with::

    pytest benchmarks/ --benchmark-only

The experiment tables are produced from session-scoped fixtures (built
once); the ``benchmark`` measurements time the real computational
kernels behind them.
"""

from __future__ import annotations

import pytest

from repro import SearchBudget
from repro.analysis.workloads import StandardWorkload

@pytest.fixture(scope="session")
def default_workload():
    """The calibration workload: hg-scale modeled, 2 Mbp functional."""
    return StandardWorkload()


@pytest.fixture(scope="session")
def small_workload():
    """A fast workload for functional (measured) comparisons."""
    return StandardWorkload(
        name="small",
        modeled_genome_length=3_100_000_000,
        functional_genome_length=120_000,
        num_guides=4,
        budget=SearchBudget(mismatches=2),
        seed=20180225,
    )
