"""F2 — Runtime versus allowed mismatches, per platform.

The figure behind the paper's core argument: seed-and-extend explodes
with the mismatch budget, brute force is flat but high, von Neumann
automata engines degrade smoothly with automaton activity, and the
spatial platforms stay flat (one symbol per cycle regardless of
budget). The benchmark measures the functional kernel at the heaviest
budget of the sweep.
"""

import pytest

from repro import SearchBudget
from repro.analysis.tables import render_series
from repro.analysis.workloads import evaluate_platforms
from repro.core import matcher

from _harness import save_experiment

TOOLS = ("hyperscan", "infant2", "fpga", "ap", "cas-offinder", "casot")
KS = list(range(6))


@pytest.fixture(scope="module")
def sweep(default_workload):
    columns = {tool: [] for tool in TOOLS}
    for k in KS:
        workload = default_workload.with_budget(SearchBudget(mismatches=k))
        results = evaluate_platforms(workload, tools=TOOLS)
        for tool in TOOLS:
            columns[tool].append(round(results.get(tool, workload.name).modeled_total, 1))
    return columns


def test_f2_mismatch_sweep(benchmark, sweep, default_workload):
    series = render_series(
        "mismatches",
        KS,
        sweep,
        title="F2: modeled end-to-end seconds vs mismatch budget (hg-scale, 10 guides)",
    )
    save_experiment("f2_mismatch_sweep", series)

    heavy = default_workload.with_budget(SearchBudget(mismatches=5))
    hits = benchmark.pedantic(
        matcher.find_hits,
        args=(heavy.genome, heavy.library, heavy.budget),
        rounds=1,
        iterations=1,
    )
    assert hits


def test_f2_shapes(sweep):
    # CasOT explodes with k.
    assert sweep["casot"][5] > 20 * sweep["casot"][1]
    # Cas-OFFinder is k-insensitive.
    assert max(sweep["cas-offinder"]) / min(sweep["cas-offinder"]) < 1.05
    # Spatial platforms are flat in k (same pass count here).
    assert max(sweep["ap"]) / min(sweep["ap"]) < 1.05
    assert max(sweep["fpga"]) / min(sweep["fpga"]) < 1.05
    # HyperScan degrades monotonically with k.
    assert all(b >= a for a, b in zip(sweep["hyperscan"], sweep["hyperscan"][1:]))
    # Crossover: CasOT beats nothing by k=4; it beats Cas-OFFinder at k<=2.
    assert sweep["casot"][1] < sweep["cas-offinder"][1]
    assert sweep["casot"][4] > sweep["cas-offinder"][4]
