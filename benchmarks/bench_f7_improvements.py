"""F7 — Proposed improvements for the spatial architectures (ablation).

The paper closes by proposing ways to push the spatial platforms
further; this ablation prices three of them on a report-heavy workload
(a bulge-budget search over a planted repeat family — the case where
the output path genuinely stalls the AP):

* **report coalescing** — record one event vector per reporting cycle
  instead of one entry per accept-row activation (bulge rows activate
  several rows per site, so coalescing collapses real traffic);
* **2-symbol striding** — consume two symbols per cycle by compiling
  the automata over symbol pairs, halving kernel cycles for ~1.6x the
  state cost (the overhead factor is *measured* from the real strided
  compiler in ``repro.automata.striding``, not assumed);
* **larger event buffers** — an architectural modification for future
  automata processing hardware.
"""

from dataclasses import replace

import pytest

from repro import Guide, SearchBudget, random_genome
from repro.analysis.tables import render_table
from repro.core import matcher
from repro.genome.synthetic import plant_sites
from repro.platforms.reporting import ReportTraffic
from repro.platforms.spec import ApSpec
from repro.platforms.timing import WorkloadProfile, ap_time

from _harness import save_experiment

GUIDE = Guide("rep", "GAGTCCGAGCAGAAGAAGAA")


def _stride2_factor(budget: SearchBudget) -> float:
    """Measured stride-2 state overhead from the real implementation
    (repro.automata.striding), not an assumed constant."""
    from repro.core.compiler import _segments
    from repro.automata.striding import strided_state_count
    from repro.platforms.resources import estimate_stes

    segments = _segments(GUIDE, reverse=False)
    strided = strided_state_count(segments, budget.mismatches)
    one_stride = estimate_stes(len(GUIDE), 3, budget.mismatches, both_strands=False)
    return strided / one_stride


@pytest.fixture(scope="module")
def heavy_profile():
    """hg-scale profile with genuine report pressure (bulge budget over
    a planted repeat family)."""
    genome = random_genome(250_000, seed=714, name="chrF7")
    for mismatches, seed in ((1, 11), (2, 12)):
        genome, _ = plant_sites(genome, [GUIDE], per_guide=50, mismatches=mismatches, seed=seed)
    budget = SearchBudget(mismatches=2, rna_bulges=1, dna_bulges=1)
    hits = matcher.find_hits(genome, [GUIDE], budget)
    events = matcher.count_report_rows(genome, [GUIDE], budget)
    scale = 3_100_000_000 / len(genome)
    return WorkloadProfile(
        genome_length=3_100_000_000,
        num_guides=1,
        site_length=23,
        total_stes=1400,
        total_transitions=2600,
        expected_active=15.0,
        report_traffic=ReportTraffic(
            events=int(events * scale),
            cycles_with_reports=int(len({h.end for h in hits}) * scale),
        ),
    )


def _stride2_profile(
    profile: WorkloadProfile, factor: float = 1.6
) -> WorkloadProfile:
    return WorkloadProfile(
        genome_length=profile.genome_length // 2,  # two symbols per cycle
        num_guides=profile.num_guides,
        site_length=profile.site_length,
        total_stes=int(profile.total_stes * factor),
        total_transitions=int(profile.total_transitions * factor),
        expected_active=profile.expected_active,
        report_traffic=profile.report_traffic,
        seed_candidates=profile.seed_candidates,
    )


def test_f7_ablation(benchmark, heavy_profile):
    stressed_spec = ApSpec(event_buffer_entries=64, event_drain_cycles=50_000)
    factor = _stride2_factor(SearchBudget(mismatches=2))
    variants = [
        ("baseline AP (small buffers)", ap_time(heavy_profile, stressed_spec)),
        (
            "+ report coalescing",
            ap_time(heavy_profile, stressed_spec, coalesce_reports=True),
        ),
        (
            "+ 2-symbol striding",
            ap_time(_stride2_profile(heavy_profile, factor), stressed_spec, coalesce_reports=True),
        ),
        (
            "+ 64x event buffers",
            ap_time(
                _stride2_profile(heavy_profile, factor),
                replace(stressed_spec, event_buffer_entries=4096),
                coalesce_reports=True,
            ),
        ),
    ]
    baseline_total = variants[0][1].total_seconds
    rows = [
        [
            name,
            f"{breakdown.kernel_seconds:.1f}",
            f"{breakdown.report_seconds:.2f}",
            f"{breakdown.total_seconds:.1f}",
            f"{baseline_total / breakdown.total_seconds:.2f}x",
        ]
        for name, breakdown in variants
    ]
    table = render_table(
        ["configuration", "kernel s", "report s", "total s", "speedup"],
        rows,
        title="F7: spatial-architecture improvement ablation (AP, bulged repeat workload)",
    )
    save_experiment("f7_improvements", table)

    totals = [breakdown.total_seconds for _, breakdown in variants]
    assert totals[1] < totals[0]  # coalescing collapses bulge-row traffic
    assert totals[2] < totals[1]  # striding halves kernel cycles
    assert totals[3] <= totals[2]  # bigger buffers never hurt
    assert variants[0][1].report_seconds > 0.5  # the stress case is real

    result = benchmark(ap_time, heavy_profile, stressed_spec)
    assert result.total_seconds > 0


def test_f7_striding_capacity_cost(benchmark):
    # Striding trades capacity for throughput: passes can grow.
    spec = ApSpec()
    base = WorkloadProfile(
        genome_length=3_100_000_000,
        num_guides=2000,
        site_length=23,
        total_stes=2000 * 292,
        total_transitions=2000 * 449,
        expected_active=1000.0,
        report_traffic=ReportTraffic(0, 0),
    )
    strided = _stride2_profile(base)
    base_time = ap_time(base, spec)
    strided_time = ap_time(strided, spec)
    assert strided_time.passes >= base_time.passes
    table = render_table(
        ["configuration", "STEs", "passes", "kernel s"],
        [
            ["1-stride", base.total_stes, base_time.passes, f"{base_time.kernel_seconds:.1f}"],
            ["2-stride", strided.total_stes, strided_time.passes, f"{strided_time.kernel_seconds:.1f}"],
        ],
        title="F7b: striding's capacity cost at 2000 guides",
    )
    save_experiment("f7_striding_capacity", table)

    result = benchmark(ap_time, strided, spec)
    assert result.passes >= 1


def test_f7_strided_execution_real(benchmark, small_workload):
    """The striding proposal executed for real: the strided AP simulator
    consumes two symbols per cycle and reports the identical hit set."""
    from repro.core.compiler import compile_library
    from repro.engines import ApEngine

    compiled = compile_library(small_workload.library, small_workload.budget)
    engine = ApEngine()
    codes = small_workload.genome.codes[:40_000]
    plain = set(engine.simulate(codes, compiled))
    strided, stats = benchmark.pedantic(
        engine.simulate_strided, args=(codes, compiled), rounds=1, iterations=1
    )
    assert set(strided) == plain
    assert stats["symbol_cycles"] == 20_000
    save_experiment(
        "f7_strided_execution",
        "F7c: real strided execution — identical hit set, "
        f"{stats['symbol_cycles']:,} pair-cycles for 40,000 symbols, "
        f"state overhead x{stats['state_overhead_vs_1stride']:.2f} vs 1-stride",
    )
