"""F14 — coalesced design vetting vs one search per candidate.

The design pipeline's economics: a region of interest yields dozens of
candidate protospacers, and vetting them naively costs one compile plus
one genome pass **each**. The coalesced vet compiles the whole panel
into one multi-guide automaton set and prices a single streaming genome
pass for all of them — the same amortisation the AP platform gets from
loading many automata onto one chip.

This experiment prices both strategies on the small functional workload
at 5/20/50-candidate panels. Correctness is asserted unconditionally:
the coalesced hit set of every candidate must be bit-identical to its
solo search. The acceptance floor is a >= 3x coalesced speedup on the
50-candidate cell.
"""

import time

from repro import OffTargetSearch, SearchBudget
from repro.analysis.tables import render_table
from repro.design import enumerate_candidates, vet_candidates
from repro.genome.sequence import Sequence
from repro.grna.library import GuideLibrary
from repro.grna.pam import get_pam

from _harness import save_experiment

PANEL_SIZES = (5, 20, 50)
BUDGET = SearchBudget(mismatches=2)


def _candidate_panel(genome, size):
    """The first *size* NGG candidates of a region cut from the genome."""
    region = Sequence.from_text("region", genome.window(1_000, 3_000))
    candidates = enumerate_candidates(region, "NGG", guide_length=20)
    assert len(candidates) >= size, (
        f"region yields only {len(candidates)} candidates, need {size}"
    )
    return candidates[:size]


def test_f14_design_coalescing(benchmark, small_workload):
    genome = small_workload.genome
    pam = get_pam("NGG")

    rows = []
    speedups = {}
    for size in PANEL_SIZES:
        candidates = _candidate_panel(genome, size)

        started = time.perf_counter()
        solo_hits = {}
        for candidate in candidates:
            library = GuideLibrary.from_guides([candidate.to_guide(pam)])
            solo_hits[candidate.name] = sorted(
                OffTargetSearch(library, BUDGET).run(genome).hits
            )
        per_candidate_wall = time.perf_counter() - started

        started = time.perf_counter()
        vetted = vet_candidates(candidates, genome, BUDGET, pam)
        coalesced_wall = time.perf_counter() - started

        assert vetted.genome_passes == 1
        for candidate in candidates:
            assert (
                list(vetted.hits_by_candidate[candidate.name])
                == solo_hits[candidate.name]
            ), f"candidate {candidate.name} diverged from its solo search"

        speedups[size] = per_candidate_wall / coalesced_wall
        rows.append(
            [
                size,
                vetted.panel_guides,
                f"{per_candidate_wall:.2f}",
                f"{coalesced_wall:.2f}",
                f"{speedups[size]:.2f}x",
            ]
        )

    table = render_table(
        [
            "candidates",
            "panel guides",
            "per-candidate s",
            "coalesced s",
            "speedup",
        ],
        rows,
        title=(
            "F14: coalesced design vetting vs one-search-per-candidate, "
            f"{len(genome):,} bp functional workload "
            f"(NGG, {BUDGET.mismatches} mismatches)"
        ),
    )
    save_experiment("f14_design", table)

    # The acceptance floor: one genome pass for 50 candidates must beat
    # 50 genome passes by at least 3x.
    assert speedups[50] >= 3.0, f"50-candidate speedup only {speedups[50]:.2f}x"

    candidates = _candidate_panel(genome, 20)

    def coalesced_round():
        return vet_candidates(candidates, genome, BUDGET, pam)

    vetted = benchmark.pedantic(coalesced_round, rounds=1, iterations=1)
    assert vetted.genome_passes == 1
