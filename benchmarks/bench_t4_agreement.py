"""T4 — Cross-tool agreement (functional validation table).

Every engine and baseline runs *functionally* on the same reference and
must emit the identical hit set; the table reports per-tool hit counts
and measured host seconds. The benchmark is parametrised over tools, so
the pytest-benchmark table doubles as the measured-host-time comparison
of the seven implementations.
"""

import pytest

from repro import OffTargetSearch
from repro.analysis.tables import render_table

from _harness import save_experiment

TOOLS = ("cpu-nfa", "hyperscan", "infant2", "fpga", "ap", "cas-offinder", "casot")
_collected = {}


def _spans(hits):
    return {(h.guide_name, h.strand, h.start, h.end) for h in hits}


@pytest.fixture(scope="module")
def search(small_workload):
    return OffTargetSearch(small_workload.library, small_workload.budget)


@pytest.mark.parametrize("tool", TOOLS)
def test_t4_tool_functional(benchmark, tool, search, small_workload):
    genome = small_workload.genome
    report = benchmark.pedantic(
        search.run, args=(genome,), kwargs={"engine": tool}, rounds=1, iterations=1
    )
    _collected[tool] = report
    assert report.num_hits >= small_workload.num_guides


def test_t4_agreement_table(benchmark, search, small_workload):
    genome = small_workload.genome
    baseline_report = benchmark.pedantic(
        search.run, args=(genome,), rounds=1, iterations=1
    )
    reference_spans = _spans(baseline_report.hits)
    rows = []
    for tool in TOOLS:
        report = _collected.get(tool) or search.run(genome, engine=tool)
        agrees = _spans(report.hits) == reference_spans
        rows.append(
            [tool, report.num_hits, f"{report.measured_seconds:.3f}", "yes" if agrees else "NO"]
        )
        assert agrees, f"{tool} disagrees with the automata hit set"
    table = render_table(
        ["tool", "hits", "measured s (host)", "identical hit set"],
        rows,
        title=(
            f"T4: functional agreement, {len(genome):,} bp, "
            f"{small_workload.num_guides} guides, {small_workload.budget.mismatches} mismatches"
        ),
    )
    save_experiment("t4_agreement", table)
