"""F1 — Automaton size versus edit budgets (capacity analysis).

Regenerates the figure showing how one guide's automaton grows with the
mismatch and bulge budgets, and how many guides therefore fit in one
configuration pass of each spatial device — the quantity that decides
multi-pass behaviour at library scale. The predictor columns are exact
for mismatch-only grids (validated against compilation in the tests);
the compiled column here is measured directly.
"""

import pytest

from repro import SearchBudget
from repro.analysis.tables import render_series, render_table
from repro.core.compiler import compile_guide
from repro.grna.guide import Guide
from repro.platforms.resources import estimate_stes, guides_per_pass
from repro.platforms.spec import ApSpec, FpgaSpec

from _harness import save_experiment

GUIDE = Guide("cap", "GAGTCCGAGCAGAAGAAGAA")


def test_f1_capacity_vs_mismatches(benchmark):
    ks = list(range(6))
    compiled_sizes = []
    for k in ks:
        compiled = compile_guide(GUIDE, SearchBudget(mismatches=k))
        compiled_sizes.append(compiled.num_stes)
    predicted = [estimate_stes(20, 3, k) for k in ks]
    ap_fit = [guides_per_pass(stes, ApSpec()) for stes in compiled_sizes]
    fpga_fit = [guides_per_pass(stes, FpgaSpec()) for stes in compiled_sizes]
    series = render_series(
        "mismatches",
        ks,
        {
            "STEs/guide (compiled)": compiled_sizes,
            "STEs/guide (predicted)": predicted,
            "guides/pass AP": ap_fit,
            "guides/pass FPGA": fpga_fit,
        },
        title="F1a: automaton size vs mismatch budget (20nt + NGG, both strands)",
    )
    save_experiment("f1_capacity_mismatches", series)
    assert compiled_sizes == predicted

    result = benchmark(compile_guide, GUIDE, SearchBudget(mismatches=5))
    assert result.num_stes == predicted[5]


def test_f1_capacity_with_bulges(benchmark):
    rows = []
    for rna, dna in ((0, 0), (1, 0), (0, 1), (1, 1), (2, 2)):
        budget = SearchBudget(mismatches=3, rna_bulges=rna, dna_bulges=dna)
        compiled = compile_guide(GUIDE, budget)
        rows.append(
            [
                f"3mm/{rna}rb/{dna}db",
                compiled.num_stes,
                compiled.combined.num_states,
                guides_per_pass(compiled.num_stes, ApSpec()),
                guides_per_pass(compiled.num_stes, FpgaSpec()),
            ]
        )
    table = render_table(
        ["budget", "STEs", "NFA states", "guides/pass AP", "guides/pass FPGA"],
        rows,
        title="F1b: automaton size with bulge budgets",
    )
    save_experiment("f1_capacity_bulges", table)

    compiled = benchmark(
        compile_guide, GUIDE, SearchBudget(mismatches=3, rna_bulges=1, dna_bulges=1)
    )
    assert compiled.num_stes > 0
