"""T3 — Headline speedups versus the baseline tools.

Regenerates the abstract's quantitative claims on the calibration
workload and asserts the reproduced shape:

* FPGA >= 83x over Cas-OFFinder (end-to-end);
* FPGA >= 600x over CasOT (end-to-end);
* AP ~= 1.5x over FPGA (kernel-only);
* HyperScan >= 29.7x over CasOT;
* iNFAnt2 <= ~4.4x over HyperScan (its best case) — no spatial-class win.
"""

import pytest

from repro.analysis.speedup import speedup_vs
from repro.analysis.tables import render_table
from repro.analysis.workloads import evaluate_platforms

from _harness import save_experiment


@pytest.fixture(scope="module")
def results(default_workload):
    return evaluate_platforms(default_workload)


def test_t3_headline_speedups(benchmark, results, default_workload):
    rows = [
        [
            "FPGA vs Cas-OFFinder",
            f"{speedup_vs(results, 'fpga', 'cas-offinder'):.1f}x",
            ">= 83x",
        ],
        [
            "FPGA vs CasOT",
            f"{speedup_vs(results, 'fpga', 'casot'):.1f}x",
            ">= 600x",
        ],
        [
            "AP vs FPGA (kernel)",
            f"{speedup_vs(results, 'ap', 'fpga', kernel_only=True):.2f}x",
            "~1.5x",
        ],
        [
            "HyperScan vs CasOT",
            f"{speedup_vs(results, 'hyperscan', 'casot'):.1f}x",
            ">= 29.7x",
        ],
        [
            "iNFAnt2 vs HyperScan",
            f"{speedup_vs(results, 'infant2', 'casot') / speedup_vs(results, 'hyperscan', 'casot'):.2f}x",
            "<= 4.4x (best case)",
        ],
        [
            "iNFAnt2 vs Cas-OFFinder",
            f"{speedup_vs(results, 'infant2', 'cas-offinder'):.1f}x",
            "not consistently > 1 (see F5)",
        ],
    ]
    table = render_table(
        ["comparison", "reproduced", "paper (abstract)"],
        rows,
        title="T3: headline speedups on the calibration workload",
    )
    save_experiment("t3_speedups", table)

    fresh = benchmark.pedantic(
        evaluate_platforms, args=(default_workload,), rounds=2, iterations=1
    )
    assert fresh.agreement()


def test_t3_claims_hold(results):
    assert speedup_vs(results, "fpga", "cas-offinder") >= 83.0
    assert speedup_vs(results, "fpga", "casot") >= 600.0
    assert 1.4 <= speedup_vs(results, "ap", "fpga", kernel_only=True) <= 1.6
    assert speedup_vs(results, "hyperscan", "casot") >= 29.7
    infant2_vs_hyperscan = (
        results.get("hyperscan").modeled_total / results.get("infant2").modeled_total
    )
    assert infant2_vs_hyperscan <= 4.5
