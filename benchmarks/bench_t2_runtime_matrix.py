"""T2 — Total runtime of every tool across mismatch budgets.

The evaluation's main comparison table: modeled end-to-end seconds on
the human-genome-scale workload for every platform and baseline, one
row per mismatch budget. The measured benchmark times the automata
engines' shared functional kernel on the 2 Mbp synthetic reference.
"""

import pytest

from repro import SearchBudget
from repro.analysis.tables import render_table
from repro.analysis.workloads import evaluate_platforms
from repro.core import matcher

from _harness import save_experiment

TOOLS = ("hyperscan", "infant2", "fpga", "ap", "cas-offinder", "casot")


@pytest.fixture(scope="module")
def matrix(default_workload):
    rows = []
    for mismatches in range(5):
        workload = default_workload.with_budget(SearchBudget(mismatches=mismatches))
        results = evaluate_platforms(workload, tools=TOOLS)
        rows.append(
            [f"k={mismatches}"]
            + [f"{results.get(tool, workload.name).modeled_total:.0f}" for tool in TOOLS]
        )
    return rows


def test_t2_runtime_matrix(benchmark, matrix, default_workload):
    table = render_table(
        ["budget", *TOOLS],
        matrix,
        title=(
            "T2: modeled end-to-end seconds, hg-scale reference "
            f"({default_workload.num_guides} guides, NGG)"
        ),
    )
    save_experiment("t2_runtime_matrix", table)

    genome = default_workload.genome
    library = default_workload.library
    hits = benchmark.pedantic(
        matcher.find_hits,
        args=(genome, library, SearchBudget(mismatches=3)),
        rounds=3,
        iterations=1,
    )
    assert len(hits) >= len(library)


def test_t2_shape_holds(matrix):
    # Column order is TOOLS; the automata platforms must order
    # ap < fpga < infant2 < hyperscan and every platform must beat the
    # baselines at k >= 3 (the paper's headline regime; at low k the
    # seed-and-extend baseline is still competitive).
    for row in matrix[3:]:
        hyperscan, infant2, fpga, ap, cas_offinder, casot = map(float, row[1:])
        assert ap < fpga < infant2 < hyperscan
        assert hyperscan < cas_offinder < casot
