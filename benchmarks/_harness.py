"""Helpers for the benchmark/experiment harness."""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def save_experiment(name: str, text: str) -> None:
    """Print an experiment table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
