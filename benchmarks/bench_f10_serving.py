"""F10 — serving-layer coalescing throughput vs one-search-per-request.

The automata-processing economics the serving layer is built on: one
streaming genome pass serves every resident automaton, and a compiled
automaton is paid for once. This experiment prices both amortisation
axes on the small functional workload at 1/4/16 concurrent clients.
Each client submits one overlapping guide panel; the baseline runs a
fresh `OffTargetSearch` per request (one compile + one genome pass
each), the service coalesces whatever arrives inside one batching
window into a single multi-guide pass over the session's genome.

Correctness is asserted unconditionally: every service response must be
bit-identical to the solo oracle run of its own (guides, budget). The
recorded table carries wall times, amortized genome passes per request,
and the compiled-guide cache hit rate.
"""

import time

from repro import OffTargetSearch, OffTargetService
from repro.analysis.tables import render_table

from _harness import save_experiment

CLIENT_COUNTS = (1, 4, 16)
BATCH_WINDOW = 0.05  # wide enough that one submit loop always coalesces


def _client_mix(library, index):
    """Client *index*'s panel: 3 guides, rotated so panels overlap."""
    guides = list(library)
    return tuple(guides[(index + offset) % len(guides)] for offset in range(3))


def test_f10_serving_coalescing(benchmark, small_workload):
    genome = small_workload.genome
    library = small_workload.library
    budget = small_workload.budget

    oracles = {
        index: OffTargetSearch(_client_mix(library, index), budget).run(genome).hits
        for index in range(max(CLIENT_COUNTS))
    }

    rows = []
    for clients in CLIENT_COUNTS:
        # two bursts per round: the second is cache-warm, exercising
        # both amortisation axes (coalesced passes + compiled reuse)
        mixes = [_client_mix(library, index) for index in range(clients)] * 2

        started = time.perf_counter()
        baseline = [
            OffTargetSearch(mix, budget).run(genome).hits for mix in mixes
        ]
        baseline_wall = time.perf_counter() - started
        for index, hits in enumerate(baseline):
            assert hits == oracles[index % clients]

        with OffTargetService(
            background=True, batch_window_seconds=BATCH_WINDOW
        ) as service:
            service.add_genome("default", genome)
            started = time.perf_counter()
            served = []
            for burst in range(2):
                futures = [
                    service.query_async(mix, budget)
                    for mix in mixes[burst * clients : (burst + 1) * clients]
                ]
                served.extend(future.result(timeout=300) for future in futures)
            serving_wall = time.perf_counter() - started
            stats = service.stats()

        for index, result in enumerate(served):
            assert result.hits == oracles[index % clients], (
                f"request {index} of {clients} clients x 2 bursts"
            )
        completed = stats["requests"]["completed"]
        assert completed == 2 * clients
        assert stats["requests"]["shed"] == 0
        assert stats["cache"]["hit_rate"] > 0  # burst 2 reused burst 1's automata
        passes_per_request = stats["genome_passes"] / completed
        if clients > 1:
            # the whole submit loop lands inside one batching window, so
            # coalescing must beat one-pass-per-request
            assert passes_per_request < 1.0

        rows.append(
            [
                clients,
                f"{baseline_wall:.2f}",
                f"{serving_wall:.2f}",
                f"{baseline_wall / serving_wall:.2f}x",
                f"{passes_per_request:.2f}",
                f"{stats['cache']['hit_rate']:.0%}",
            ]
        )

    table = render_table(
        [
            "clients",
            "per-request s",
            "coalesced s",
            "speedup",
            "passes/request",
            "cache hit rate",
        ],
        rows,
        title=(
            "F10: serving-layer coalescing vs one-search-per-request, "
            f"{len(genome):,} bp functional workload "
            f"(3-guide panels, {budget.mismatches} mismatches)"
        ),
    )
    save_experiment("f10_serving", table)

    def serve_round():
        with OffTargetService(
            background=True, batch_window_seconds=BATCH_WINDOW
        ) as service:
            service.add_genome("default", genome)
            futures = [
                service.query_async(_client_mix(library, index), budget)
                for index in range(4)
            ]
            return [future.result(timeout=300) for future in futures]

    served = benchmark.pedantic(serve_round, rounds=1, iterations=1)
    for index, result in enumerate(served):
        assert result.hits == oracles[index]
