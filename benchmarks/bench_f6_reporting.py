"""F6 — Report-rate analysis on the spatial architectures.

Spatial platforms compute matches for free but pay for *reporting*:
accept-row activations fill output event buffers whose drains stall the
symbol pipeline. Random sequence makes reports vanishingly rare; what
stresses the output path in practice is a guide that lands in a repeat
family. This experiment plants diverged near-target populations (40
sites each at 1..4 mismatches), measures true accept-row activations
versus the search budget, and prices hg-scale stalls with the AP buffer
model, with and without the paper's per-cycle coalescing optimisation.
"""

import pytest

from repro import Guide, SearchBudget, random_genome
from repro.analysis.tables import render_series
from repro.core import matcher
from repro.genome.synthetic import plant_sites
from repro.platforms.reporting import ReportCostModel, ReportTraffic
from repro.platforms.spec import ApSpec

from _harness import save_experiment

KS = [0, 1, 2, 3, 4]
GUIDE = Guide("rep", "GAGTCCGAGCAGAAGAAGAA")


@pytest.fixture(scope="module")
def repeat_genome():
    """300 kbp with a planted population of diverged near-targets."""
    genome = random_genome(300_000, seed=618, name="chrRep")
    for mismatches, count, seed in ((0, 10, 1), (1, 40, 2), (2, 40, 3), (3, 40, 4), (4, 40, 5)):
        genome, _ = plant_sites(
            genome, [GUIDE], per_guide=count, mismatches=mismatches, seed=seed
        )
    return genome


@pytest.fixture(scope="module")
def traffic(repeat_genome):
    events, hits, positions = [], [], []
    for k in KS:
        budget = SearchBudget(mismatches=k)
        found = matcher.find_hits(repeat_genome, [GUIDE], budget)
        events.append(matcher.count_report_rows(repeat_genome, [GUIDE], budget))
        hits.append(len(found))
        positions.append(len({h.end for h in found}))
    return {"events": events, "hits": hits, "positions": positions}


def test_f6_report_rate(benchmark, traffic, repeat_genome):
    genome_len = len(repeat_genome)
    per_mega = [round(e * 1e6 / genome_len, 1) for e in traffic["events"]]
    series = render_series(
        "mismatches",
        KS,
        {
            "accept activations": traffic["events"],
            "deduplicated hits": traffic["hits"],
            "report cycles": traffic["positions"],
            "activations per Mbp": per_mega,
        },
        title=f"F6a: report traffic vs budget (repeat-family workload, {genome_len:,} bp)",
    )
    save_experiment("f6_report_rate", series)
    # Report pressure grows steeply with the budget on repeat families.
    assert traffic["events"][4] > 10 * traffic["events"][0]
    assert all(b >= a for a, b in zip(traffic["events"], traffic["events"][1:]))
    assert all(e >= h for e, h in zip(traffic["events"], traffic["hits"]))

    budget = SearchBudget(mismatches=3)
    count = benchmark.pedantic(
        matcher.count_report_rows,
        args=(repeat_genome, [GUIDE], budget),
        rounds=1,
        iterations=1,
    )
    assert count == traffic["events"][3]


def test_f6_bulged_budgets_multiply_activations(benchmark, repeat_genome):
    # Bulge rows open extra accepting paths per site: activations exceed
    # hits by a widening factor — exactly what coalescing collapses.
    budget = SearchBudget(mismatches=2, rna_bulges=1, dna_bulges=1)
    hits = matcher.find_hits(repeat_genome, [GUIDE], budget)
    events = benchmark.pedantic(
        matcher.count_report_rows,
        args=(repeat_genome, [GUIDE], budget),
        rounds=1,
        iterations=1,
    )
    ratio = events / max(len(hits), 1)
    save_experiment(
        "f6_bulged_activations",
        f"F6c: bulged budget 2mm/1rb/1db — {events} activations for {len(hits)} "
        f"hits (x{ratio:.2f} amplification)",
    )
    assert ratio > 1.5


def test_f6_stall_pricing(benchmark, traffic, repeat_genome):
    spec = ApSpec(event_buffer_entries=512)  # stressed output path
    scale = 3_100_000_000 / len(repeat_genome)
    plain_model = ReportCostModel(spec.event_buffer_entries, spec.event_drain_cycles)
    coalesced_model = plain_model.with_coalescing()
    plain_ms, coalesced_ms = [], []
    for index in range(len(KS)):
        scaled = ReportTraffic(
            events=int(traffic["events"][index] * scale),
            cycles_with_reports=int(traffic["positions"][index] * scale),
        )
        plain_ms.append(round(1e3 * plain_model.stall_cycles(scaled) / spec.clock_hz, 1))
        coalesced_ms.append(
            round(1e3 * coalesced_model.stall_cycles(scaled) / spec.clock_hz, 1)
        )
    series = render_series(
        "mismatches",
        KS,
        {"stall ms (per-event)": plain_ms, "stall ms (coalesced)": coalesced_ms},
        title="F6b: AP report-stall cost at hg scale (512-entry buffers)",
    )
    save_experiment("f6_stall_pricing", series)
    assert all(c <= p for c, p in zip(coalesced_ms, plain_ms))
    assert plain_ms[-1] > plain_ms[0]

    result = benchmark(plain_model.stall_cycles, ReportTraffic(10**6, 10**5))
    assert result > 0
