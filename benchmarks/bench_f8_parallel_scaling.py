"""F8 — host-parallel scaling of the functional path (reconstructed).

The paper's platforms earn their throughput from spatial parallelism;
the host-side analogue is the sharded process-pool executor
(`repro.core.parallel`), which fans overlap-correct genome chunks and
guide batches across workers. This experiment measures wall time on
the 2 Mbp calibration workload at 1/2/4/8 workers and reports the
speedup and parallel-efficiency curve — the multi-core scaling story
Memeti & Pllana demonstrate for large-scale DNA scanning on CPUs.

Correctness is asserted unconditionally: every worker count must
produce the identical hit list. The speedup assertion is gated on the
machine actually having cores to scale onto (CI runners and laptops
differ); the recorded table always states the host's core count.
"""

import os
import time

from repro.core.parallel import ParallelSearch
from repro.analysis.tables import render_table

from _harness import save_experiment

WORKER_COUNTS = [1, 2, 4, 8]
CHUNK_LENGTH = 1 << 19  # 512 kbp -> 4+ chunks on the 2 Mbp workload


def _timed_search(executor, genome):
    started = time.perf_counter()
    hits, stats = executor.search_with_stats(genome)
    return hits, stats, time.perf_counter() - started


def test_f8_parallel_scaling(benchmark, default_workload):
    genome = default_workload.genome
    guides = default_workload.library
    budget = default_workload.budget
    cores = os.cpu_count() or 1

    reference_hits = None
    rows = []
    seconds_by_workers = {}
    for workers in WORKER_COUNTS:
        executor = ParallelSearch(
            guides, budget, workers=workers, chunk_length=CHUNK_LENGTH
        )
        hits, stats, wall = _timed_search(executor, genome)
        if reference_hits is None:
            reference_hits = hits
        # The load-bearing guarantee: identical results at every width.
        assert hits == reference_hits
        seconds_by_workers[workers] = wall
        speedup = seconds_by_workers[1] / wall
        rows.append(
            [
                workers,
                stats["num_shards"],
                "pool" if stats["pooled"] else "serial",
                f"{wall:.2f}",
                f"{speedup:.2f}x",
                f"{100 * speedup / workers:.0f}%",
                len(hits),
            ]
        )
    table = render_table(
        ["workers", "shards", "mode", "wall s", "speedup", "efficiency", "hits"],
        rows,
        title=(
            "F8: sharded-executor scaling, 2 Mbp functional workload "
            f"(10 guides, 3 mismatches; host has {cores} core(s))"
        ),
    )
    save_experiment("f8_parallel_scaling", table)

    # Scaling can only be demanded of hardware that has the cores; on a
    # multi-core host the 4-worker run must clear 1.5x, and efficiency
    # at 2 workers should not collapse below half.
    if cores >= 4:
        assert seconds_by_workers[1] / seconds_by_workers[4] >= 1.5
    if cores >= 2:
        assert seconds_by_workers[1] / seconds_by_workers[2] >= 1.0

    executor = ParallelSearch(
        guides, budget, workers=min(2, cores), chunk_length=CHUNK_LENGTH
    )
    hits = benchmark.pedantic(executor.search, args=(genome,), rounds=1, iterations=1)
    assert hits == reference_hits
