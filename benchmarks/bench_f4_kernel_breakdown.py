"""F4 — Kernel versus end-to-end breakdown on the spatial platforms.

The AP's 1.5x advantage over the FPGA is a *kernel-only* claim; end to
end, configuration and report-drain overheads shift the picture. This
table decomposes every platform's modeled time into setup, kernel and
report components — the data behind the paper's kernel-vs-total
discussion. The benchmark measures the AP cycle simulator with stall
accounting on a reference slice.
"""

import pytest

from repro.analysis.tables import render_table
from repro.analysis.workloads import evaluate_platforms
from repro.core.compiler import compile_library
from repro.engines import ApEngine

from _harness import save_experiment

TOOLS = ("hyperscan", "infant2", "fpga", "ap", "cas-offinder", "casot")


def test_f4_kernel_breakdown(benchmark, default_workload, small_workload):
    results = evaluate_platforms(default_workload, tools=TOOLS)
    rows = []
    for tool in TOOLS:
        record = results.get(tool)
        modeled = record.modeled
        rows.append(
            [
                tool,
                f"{modeled.setup_seconds:.2f}",
                f"{modeled.kernel_seconds:.1f}",
                f"{modeled.report_seconds:.3f}",
                f"{modeled.total_seconds:.1f}",
                f"{100 * modeled.kernel_seconds / modeled.total_seconds:.1f}%",
            ]
        )
    table = render_table(
        ["tool", "setup s", "kernel s", "report s", "total s", "kernel share"],
        rows,
        title="F4: modeled time breakdown (hg-scale calibration workload)",
    )
    save_experiment("f4_kernel_breakdown", table)

    # Kernel-only AP advantage persists end-to-end here (low report rate).
    ap = results.get("ap").modeled
    fpga = results.get("fpga").modeled
    assert ap.kernel_seconds < fpga.kernel_seconds
    assert ap.total_seconds < fpga.total_seconds

    compiled = compile_library(small_workload.library, small_workload.budget)
    codes = small_workload.genome.codes[:15_000]
    engine = ApEngine()
    _, stats = benchmark.pedantic(
        engine.simulate_with_stalls, args=(codes, compiled), rounds=1, iterations=1
    )
    assert stats["symbol_cycles"] == 15_000
