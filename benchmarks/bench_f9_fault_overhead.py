"""F9 — cost of fault tolerance and observability on the F8 workload.

The supervised executor added to `repro.core.parallel` wraps every
shard in retry/timeout accounting and threads a metrics collector
through the pipeline. This experiment prices that machinery on the
same 2 Mbp calibration workload F8 scales: the bare vectorised kernel
versus the instrumented sharded path (workers=1 — pure bookkeeping,
no pool), a clean pooled run, and a pooled run that loses a worker
mid-flight and recovers (one injected kill, one pool rebuild).

Correctness is asserted unconditionally: every configuration —
including the faulted one — must produce the identical hit list. The
overhead assertion is deliberately loose (bookkeeping must not double
the serial kernel time); the recorded table carries the exact ratios.
"""

import time

from repro.core import matcher
from repro.core.parallel import FaultPlan, ParallelSearch
from repro.analysis.tables import render_table

from _harness import save_experiment

CHUNK_LENGTH = 1 << 19  # match F8: 4+ chunks on the 2 Mbp workload


def _timed(callable_, *args):
    started = time.perf_counter()
    result = callable_(*args)
    return result, time.perf_counter() - started


def test_f9_fault_overhead(benchmark, default_workload):
    genome = default_workload.genome
    guides = default_workload.library
    budget = default_workload.budget

    baseline_hits, baseline_wall = _timed(
        matcher.find_hits, genome, guides, budget
    )

    def configuration(label, **kwargs):
        executor = ParallelSearch(
            guides, budget, chunk_length=CHUNK_LENGTH, backoff_seconds=0.0, **kwargs
        )
        (hits, stats), wall = _timed(executor.search_with_stats, genome)
        assert hits == baseline_hits, label
        ft = stats["fault_tolerance"]
        return {
            "label": label,
            "wall": wall,
            "retries": ft["retries"],
            "rebuilds": ft["pool_rebuilds"],
            "recovered": sum(ft["failures"].values()),
        }

    runs = [
        {"label": "bare kernel", "wall": baseline_wall, "retries": 0,
         "rebuilds": 0, "recovered": 0},
        configuration("sharded, workers=1 (instrumented)", workers=1),
        configuration("pooled, workers=2, clean", workers=2),
        configuration(
            "pooled, workers=2, one worker killed",
            workers=2,
            fault_plan=FaultPlan.kill(1),
        ),
    ]

    rows = [
        [
            run["label"],
            f"{run['wall']:.2f}",
            f"{run['wall'] / baseline_wall:.2f}x",
            run["recovered"],
            run["retries"],
            run["rebuilds"],
        ]
        for run in runs
    ]
    table = render_table(
        ["configuration", "wall s", "vs kernel", "faults", "retries", "rebuilds"],
        rows,
        title=(
            "F9: fault-tolerance/observability overhead, 2 Mbp functional "
            "workload (10 guides, 3 mismatches)"
        ),
    )
    save_experiment("f9_fault_overhead", table)

    # Instrumentation alone (workers=1: same kernel, plus sharding,
    # validation, and metrics) must stay within 2x of the bare kernel.
    instrumented = runs[1]["wall"]
    assert instrumented / baseline_wall < 2.0
    # The faulted run really did recover something.
    assert runs[3]["recovered"] >= 1

    executor = ParallelSearch(
        guides, budget, workers=1, chunk_length=CHUNK_LENGTH
    )
    hits = benchmark.pedantic(executor.search, args=(genome,), rounds=1, iterations=1)
    assert hits == baseline_hits
