"""F11 — clean-path cost of the chaos-hardened serving edge.

The chaos-hardening PR threaded fault machinery through every socket
request: owned-buffer line framing with an oversize guard on both
ends, client-side retry bookkeeping with stamped request ids, and a
server-side idempotency record consulted on every id-carrying query.
This experiment prices that machinery where it matters — the *clean*
path, no faults injected — against the same F10-style socket workload
served by a bare client (no retry policy, no ids, no idempotency
lookups). A drained shutdown replaces the abrupt one, so the graceful
path is priced too.

Correctness is asserted unconditionally: every response in every
configuration must be bit-identical to the solo oracle. The overhead
assertion is deliberately loose (the hardened path must not double the
bare path over a warm run); the recorded table carries the exact
per-request latencies and the execution/dedup accounting proving the
idempotency layer stayed out of the way (zero deduped replays on a
clean run).
"""

import time

from repro import OffTargetSearch, OffTargetService
from repro.analysis.tables import render_table
from repro.check import check_server
from repro.service import OffTargetServer, RetryPolicy, ServiceClient

from _harness import save_experiment

REQUESTS = 24  # sequential socket round-trips per configuration
BATCH_WINDOW = 0.002


def _serve(genome):
    service = OffTargetService(background=True, batch_window_seconds=BATCH_WINDOW)
    service.add_genome("default", genome)
    server = OffTargetServer(service)
    host, port = server.start()
    return server, host, port


def _run(genome, guides, budget, oracle, *, retry):
    server, host, port = _serve(genome)
    try:
        with ServiceClient(host, port, timeout_seconds=120, retry=retry) as client:
            client.query(guides, budget)  # warm the compiled-guide cache
            started = time.perf_counter()
            for _ in range(REQUESTS):
                assert client.query(guides, budget).hits == oracle
            wall = time.perf_counter() - started
        counters = server.service.metrics.counters_with_prefix("service.server.")
        report = check_server(server)
        assert not any(
            d.severity.name == "ERROR" for d in report.diagnostics
        ), report.render()
    finally:
        server.stop()
    return wall, counters


def test_f11_chaos_overhead(benchmark, small_workload):
    genome = small_workload.genome
    guides = tuple(small_workload.library)[:3]
    budget = small_workload.budget
    oracle = OffTargetSearch(guides, budget).run(genome).hits

    bare_wall, bare_counters = _run(
        genome, guides, budget, oracle, retry=None
    )
    hardened_wall, hardened_counters = _run(
        genome, guides, budget, oracle, retry=RetryPolicy(seed=11)
    )

    # The idempotency layer must be pure bookkeeping on a clean run:
    # every request executed exactly once, nothing answered from the
    # record, nothing chaotic injected.
    assert hardened_counters.get("service.server.requests.deduped", 0) == 0
    assert hardened_counters.get("service.server.chaos_injected", 0) == 0
    assert hardened_counters["service.server.executions"] == REQUESTS + 1
    # Loose bound: stamped ids + record upkeep must not double the
    # per-request cost (the table records the true ratio).
    assert hardened_wall < 2.0 * bare_wall + 0.25

    rows = [
        ["bare client (no ids)", f"{1e3 * bare_wall / REQUESTS:.2f}", "-", "-"],
        [
            "hardened (retry + ids)",
            f"{1e3 * hardened_wall / REQUESTS:.2f}",
            f"{hardened_wall / bare_wall:.2f}x",
            f"{int(hardened_counters['service.server.executions'])}/0",
        ],
    ]
    table = render_table(
        ["serving path", "ms/request", "vs bare", "executions/deduped"],
        rows,
        title=(
            "F11: clean-path overhead of chaos hardening "
            f"({REQUESTS} warm socket requests, {len(genome):,} bp, "
            f"{len(guides)}-guide panel, {budget.mismatches} mismatches)"
        ),
    )
    save_experiment("f11_chaos_overhead", table)

    def hardened_round():
        wall, _ = _run(genome, guides, budget, oracle, retry=RetryPolicy(seed=11))
        return wall

    benchmark.pedantic(hardened_round, rounds=1, iterations=1)
