"""F12 — Bit-parallel kernel throughput versus the byte-wise LUT scan.

The bit-parallel Shift-And kernel (`repro.core.bitparallel`) evaluates
64 genome start positions per machine word and shares the packed code
planes across the whole guide panel; the LUT matcher gathers one byte
per (pattern position, genome symbol). This table measures both
through the same ``StreamingSearch`` front end — identical chunking,
identical dedupe — so the ratio isolates the kernel, in symbols/s,
across panel sizes and mismatch budgets.

Acceptance (ISSUE 6): >= 10x symbols/s over the matcher-backed stream
on a 20-guide panel at mismatch budget 3. Both kernels' hit lists are
asserted bit-identical before any timing is trusted.
"""

import time

from repro import SearchBudget, StreamingSearch, random_genome, sample_guides_from_genome
from repro.analysis.tables import render_table

from _harness import save_experiment

GENOME_LENGTH = 200_000
PANEL_SIZES = (1, 5, 20)
BUDGETS = (1, 3)
CHUNK = 1 << 16

#: The ISSUE acceptance cell: 20-guide panel, budget 3, >= 10x.
ACCEPTANCE_PANEL = 20
ACCEPTANCE_BUDGET = 3
ACCEPTANCE_FLOOR = 10.0


def _best_seconds(search, genome, repeats):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        search.search(genome)
        best = min(best, time.perf_counter() - started)
    return best


def test_f12_bitparallel_throughput(benchmark):
    genome = random_genome(GENOME_LENGTH, seed=1202, name="chrF12")
    donor = random_genome(50_000, seed=1203, name="chrDonor")
    rows = []
    acceptance_speedup = None
    for panel_size in PANEL_SIZES:
        guides = sample_guides_from_genome(donor, panel_size, seed=1204 + panel_size)
        for mismatches in BUDGETS:
            budget = SearchBudget(mismatches=mismatches)
            bitparallel = StreamingSearch(
                guides, budget, chunk_length=CHUNK, kernel="bitparallel"
            )
            matcher = StreamingSearch(
                guides, budget, chunk_length=CHUNK, kernel="matcher"
            )
            # Differential gate before timing: a fast wrong kernel is
            # not a result.
            assert bitparallel.search(genome) == matcher.search(genome)
            repeats = 3 if panel_size < 20 else 2
            bp_seconds = _best_seconds(bitparallel, genome, repeats)
            lut_seconds = _best_seconds(matcher, genome, repeats)
            speedup = lut_seconds / bp_seconds
            if panel_size == ACCEPTANCE_PANEL and mismatches == ACCEPTANCE_BUDGET:
                acceptance_speedup = speedup
            rows.append(
                [
                    str(panel_size),
                    str(mismatches),
                    f"{GENOME_LENGTH / lut_seconds:,.0f}",
                    f"{GENOME_LENGTH / bp_seconds:,.0f}",
                    f"{speedup:.1f}x",
                ]
            )
    table = render_table(
        ["guides", "mm", "matcher sym/s", "bitparallel sym/s", "speedup"],
        rows,
        title=(
            f"F12: streaming throughput by kernel "
            f"({GENOME_LENGTH:,} bp, chunk {CHUNK})"
        ),
    )
    save_experiment("f12_bitparallel_throughput", table)

    assert acceptance_speedup is not None
    assert acceptance_speedup >= ACCEPTANCE_FLOOR, (
        f"bit-parallel kernel is only {acceptance_speedup:.1f}x the matcher "
        f"on the {ACCEPTANCE_PANEL}-guide/mm={ACCEPTANCE_BUDGET} panel; "
        f"the F12 acceptance floor is {ACCEPTANCE_FLOOR}x"
    )

    # A measured number for the benchmark log: one cold+warm kernel
    # pass on the acceptance panel.
    guides = sample_guides_from_genome(donor, ACCEPTANCE_PANEL, seed=1224)
    search = StreamingSearch(
        guides,
        SearchBudget(mismatches=ACCEPTANCE_BUDGET),
        chunk_length=CHUNK,
        kernel="bitparallel",
    )
    hits = benchmark.pedantic(search.search, args=(genome,), rounds=2, iterations=1)
    assert hits == StreamingSearch(
        guides, SearchBudget(mismatches=ACCEPTANCE_BUDGET), chunk_length=CHUNK,
        kernel="matcher",
    ).search(genome)
