"""A1 — Design-space ablation: mismatch rows versus counter elements.

The paper's automata use one row of states per mismatch count; the AP's
counter elements suggest an alternative single-chain design. This
experiment runs both (the counter design executes on the full ANML
element model) and measures the trade-off the paper's design implies:

* streaming search: the counter design needs one phase instance per
  window offset (overlapping windows each need a live count), costing
  O(site²) STEs versus the rows' O(site x budget) — rows win at every
  practical budget, and also label each report with its exact mismatch
  count, which counters cannot;
* anchored verification (a seed-filter second stage): one chain + one
  counter, budget-independent — counters win from ~2 mismatches up.
"""

import numpy as np
import pytest

from repro import SearchBudget
from repro.analysis.tables import render_series, render_table
from repro.core.compiler import _segments, compile_guide
from repro.core.counter_design import build_counter_design, counter_design_resources
from repro.grna.guide import Guide
from repro.platforms.resources import estimate_stes

from _harness import save_experiment

GUIDE = Guide("a1", "GAGTCCGAGCAGAAGAAGAA")


def test_a1_resource_crossover(benchmark):
    ks = list(range(6))
    rows_streaming = [estimate_stes(20, 3, k, both_strands=False) for k in ks]
    counter_streaming = [
        counter_design_resources(23, 20, streaming=True)["stes"] for _ in ks
    ]
    rows_anchored = rows_streaming  # the row grid is the same machine anchored
    counter_anchored = [
        counter_design_resources(23, 20, streaming=False)["stes"] for _ in ks
    ]
    series = render_series(
        "mismatches",
        ks,
        {
            "rows (streaming)": rows_streaming,
            "counter (streaming)": counter_streaming,
            "rows (anchored)": rows_anchored,
            "counter (anchored)": counter_anchored,
        },
        title="A1a: STEs per guide-strand, row design vs counter design",
    )
    save_experiment("a1_counter_resources", series)

    # Streaming: rows always win. Anchored: counters win from k=2 up.
    assert all(r < c for r, c in zip(rows_streaming, counter_streaming))
    assert counter_anchored[2] < rows_anchored[2]

    result = benchmark(counter_design_resources, 23, 20)
    assert result["counters"] == 23


def test_a1_functional_equivalence(benchmark):
    # Both designs accept the same windows (counter reports lack the
    # mismatch-count label — the design's other cost).
    k = 2
    segments = _segments(GUIDE, reverse=False)
    network = build_counter_design(segments, k, label="hit", streaming=True)
    compiled = compile_guide(GUIDE, SearchBudget(mismatches=k))
    rng = np.random.default_rng(31)
    codes = rng.integers(0, 4, 400).astype(np.uint8)
    target = GUIDE.concrete_target()
    from repro import alphabet

    codes = np.concatenate([codes, alphabet.encode("TG" + target), codes[:50]])
    row_positions = sorted({p for p, _ in compiled.forward.run(codes)})

    counter_reports = benchmark.pedantic(
        lambda: sorted({p for p, _ in network.run(codes)}), rounds=1, iterations=1
    )
    assert counter_reports == row_positions
    table = render_table(
        ["design", "accepting positions", "labels per report"],
        [
            ["rows", len(row_positions), "exact mismatch count"],
            ["counter", len(counter_reports), "within-budget only"],
        ],
        title="A1b: functional agreement on a planted stream (k=2)",
    )
    save_experiment("a1_counter_equivalence", table)
