"""F15 — sharded-cluster throughput scaling and failover latency.

The paper's scaling argument moved one level up: if throughput comes
from adding execution units behind a common abstraction, then adding
*nodes* behind the wire protocol should scale serving throughput the
same way adding automata lanes scaled a single pass. This experiment
prices that claim on the functional workload: a fixed burst of
concurrent client panels is pushed through ``ClusterRouter`` fronting
1, 2, and 3 backend servers, against the F10-style baseline of the
same burst against one directly-addressed server (no router hop).

Expect the small functional workload to show router *overhead*, not
speedup: an unsaturated single node coalesces every concurrent panel
into one streaming genome pass, while sharding the same panels across
N nodes necessarily runs N passes and adds a proxy hop. The cluster
tier buys horizontal headroom and fault tolerance — its throughput
argument only engages once one node's scheduler saturates, which this
deliberately fast workload does not attempt.

The second table prices the fault-tolerance headline: with the cluster
warm, the primary backend for a panel is crashed (`die()`) and the
next query's wall time — connection-failure detection + same-id
re-issue to the surviving replica — is compared against a warm routed
query. Correctness is asserted unconditionally throughout: every
response, including the failover one, must be bit-identical to the
solo-search oracle of its panel.
"""

import threading
import time

from repro import Metrics, OffTargetSearch, OffTargetService
from repro.analysis.tables import render_table
from repro.cluster import BackendSpec, ClusterRouter, RouterConfig, route_key
from repro.service import OffTargetServer, RetryPolicy, ServiceClient

from _harness import save_experiment

BACKEND_COUNTS = (1, 2, 3)
SESSIONS = 8  # concurrent client panels; keys spread across the ring
REQUESTS_PER_SESSION = 2  # second request is cache-warm on its node
CLIENT_TIMEOUT = 300


def _panel_of(library, index):
    guides = list(library)
    return tuple(guides[(index + offset) % len(guides)] for offset in range(3))


def _start_backends(genome, count):
    backends = {}
    specs = []
    for index in range(count):
        service = OffTargetService(background=True, batch_window_seconds=0.01)
        for session in range(SESSIONS):
            service.add_genome(f"s{session}", genome)
        server = OffTargetServer(service)
        host, port = server.start()
        name = f"b{index}"
        backends[name] = server
        specs.append(BackendSpec(name=name, host=host, port=port))
    return backends, tuple(specs)


def _drive_burst(host, port, library, budget, oracles, tag):
    """SESSIONS client threads, each sending its panel twice; wall time."""
    failures = []

    def run_session(session):
        panel = _panel_of(library, session)
        try:
            with ServiceClient(
                host, port, timeout_seconds=CLIENT_TIMEOUT
            ) as client:
                for request in range(REQUESTS_PER_SESSION):
                    result = client.query(
                        panel,
                        budget,
                        session_id=f"s{session}",
                        request_id=f"{tag}-s{session}-{request}",
                    )
                    if result.hits != oracles[session % len(oracles)]:
                        failures.append(f"session {session} diverged")
        except Exception as error:  # noqa: BLE001 - collected, then raised
            failures.append(f"session {session}: {error!r}")

    threads = [
        threading.Thread(target=run_session, args=(session,))
        for session in range(SESSIONS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=CLIENT_TIMEOUT)
    wall = time.perf_counter() - started
    assert not failures, failures
    return wall


def test_f15_cluster_scaling(benchmark, small_workload):
    genome = small_workload.genome
    library = small_workload.library
    budget = small_workload.budget
    oracles = [
        OffTargetSearch(_panel_of(library, index), budget).run(genome).hits
        for index in range(len(list(library)))
    ]
    total_requests = SESSIONS * REQUESTS_PER_SESSION

    # Baseline: the same burst against one server, no router hop.
    backends, _ = _start_backends(genome, 1)
    (baseline_server,) = backends.values()
    try:
        host, port = baseline_server.address
        direct_wall = _drive_burst(host, port, library, budget, oracles, "direct")
    finally:
        baseline_server.stop()

    rows = [
        [
            "direct",
            1,
            f"{direct_wall:.2f}",
            f"{total_requests / direct_wall:.1f}",
            "1.00x",
        ]
    ]
    for count in BACKEND_COUNTS:
        backends, specs = _start_backends(genome, count)
        router = ClusterRouter(
            RouterConfig(backends=specs, replicas=min(2, count)),
            metrics=Metrics(),
        )
        try:
            host, port = router.start(probe=False)
            wall = _drive_burst(host, port, library, budget, oracles, f"n{count}")
            stats = router.stats()
            assert stats["forwarded"] == total_requests
            assert stats["failovers"] == 0
            served_on = {
                name
                for name, server in backends.items()
                if server.execution_counts()
            }
            if count > 1:
                assert len(served_on) > 1, "keys did not spread across nodes"
            rows.append(
                [
                    "routed",
                    count,
                    f"{wall:.2f}",
                    f"{total_requests / wall:.1f}",
                    f"{direct_wall / wall:.2f}x",
                ]
            )
        finally:
            router.stop()
            for server in backends.values():
                server.stop()

    table = render_table(
        ["mode", "backends", "wall s", "req/s", "vs direct"],
        rows,
        title=(
            f"F15: cluster throughput, {SESSIONS} concurrent panels x "
            f"{REQUESTS_PER_SESSION} requests, {len(genome):,} bp functional "
            f"workload ({budget.mismatches} mismatches)"
        ),
    )
    save_experiment("f15_cluster", table)

    # Failover latency: crash the primary of a warm panel, time the
    # re-issued query against a warm routed one.
    backends, specs = _start_backends(genome, 3)
    router = ClusterRouter(
        RouterConfig(backends=specs, replicas=2, failure_threshold=1),
        metrics=Metrics(),
    )
    try:
        host, port = router.start(probe=False)
        panel = _panel_of(library, 0)
        with ServiceClient(
            host,
            port,
            timeout_seconds=CLIENT_TIMEOUT,
            retry=RetryPolicy(seed=15, base_delay_seconds=0.01),
        ) as client:
            client.query(panel, budget, session_id="s0", request_id="fo-warm-0")
            started = time.perf_counter()
            warm = client.query(
                panel, budget, session_id="s0", request_id="fo-warm-1"
            )
            warm_latency = time.perf_counter() - started
            key = route_key("s0", panel, budget)
            live = set(router.membership.live_names())
            primary = next(
                name for name in router.ring.preference(key) if name in live
            )
            backends[primary].die()
            started = time.perf_counter()
            failed_over = client.query(
                panel, budget, session_id="s0", request_id="fo-reissue"
            )
            failover_latency = time.perf_counter() - started
        assert warm.hits == oracles[0]
        assert failed_over.hits == oracles[0]
        assert router.metrics.counter("route.reissues") >= 1
        for server in backends.values():
            counts = server.execution_counts()
            assert all(count == 1 for count in counts.values()), counts
        failover_table = render_table(
            ["path", "latency ms"],
            [
                ["warm routed query", f"{warm_latency * 1000:.1f}"],
                ["failover (kill + same-id re-issue)", f"{failover_latency * 1000:.1f}"],
            ],
            title="F15: failover latency, 3 backends, primary crashed mid-panel",
        )
        save_experiment("f15_cluster_failover", failover_table)
    finally:
        router.stop()
        for server in backends.values():
            server.stop()

    # The measured kernel: one warm routed burst against 3 backends.
    backends, specs = _start_backends(genome, 3)
    router = ClusterRouter(
        RouterConfig(backends=specs, replicas=2), metrics=Metrics()
    )
    try:
        host, port = router.start(probe=False)
        _drive_burst(host, port, library, budget, oracles, "prewarm")

        def routed_burst():
            return _drive_burst(host, port, library, budget, oracles, "bench")

        benchmark.pedantic(routed_burst, rounds=1, iterations=1)
    finally:
        router.stop()
        for server in backends.values():
            server.stop()
