"""F5 — Why the automata approach maps poorly to the GPU (iNFAnt2).

Sweeps the drivers of iNFAnt2's cost model and measures its simulator:

* transition-table size and expected active transitions versus the
  mismatch budget (table growth is what spills shared memory);
* modeled time versus guide count, locating the crossover where the
  brute-force Cas-OFFinder becomes *faster* than the GPU NFA engine —
  the abstract's "does not consistently work better" result;
* measured transitions-examined per symbol from the faithful
  transition-list simulator.
"""

import pytest

from repro import SearchBudget
from repro.analysis.tables import render_series
from repro.core.compiler import compile_library
from repro.engines import Infant2Engine
from repro.engines.infant2 import TransitionLists
from repro.platforms.reporting import ReportTraffic
from repro.platforms.resources import expected_activity
from repro.platforms.spec import CasOffinderSpec, GpuNfaSpec
from repro.platforms.timing import WorkloadProfile, cas_offinder_time, infant2_time

from _harness import save_experiment

GENOME_LENGTH = 3_100_000_000


def test_f5_table_growth_vs_budget(benchmark, default_workload):
    ks = list(range(5))
    table_entries = []
    active_transitions = []
    for k in ks:
        compiled = compile_library(default_workload.library, SearchBudget(mismatches=k))
        lists = TransitionLists.compile(compiled.homogeneous)
        stats = compiled.stats()
        table_entries.append(lists.total_transitions)
        active_transitions.append(
            round(expected_activity(compiled.homogeneous) * max(1.0, stats.transition_density), 1)
        )
    series = render_series(
        "mismatches",
        ks,
        {
            "transition-table entries": table_entries,
            "expected active transitions/symbol": active_transitions,
        },
        title="F5a: iNFAnt2 transition-table growth (10 guides)",
    )
    save_experiment("f5_table_growth", series)
    assert all(b > a for a, b in zip(table_entries, table_entries[1:]))

    compiled = compile_library(default_workload.library, SearchBudget(mismatches=3))
    lists = benchmark(TransitionLists.compile, compiled.homogeneous)
    assert lists.total_transitions == table_entries[3]


def test_f5_crossover_vs_cas_offinder(benchmark, default_workload, small_workload):
    compiled = compile_library(default_workload.library, SearchBudget(mismatches=3))
    stats = compiled.stats()
    guides = len(default_workload.library)
    per_guide_active = expected_activity(compiled.homogeneous) / guides
    per_guide_edges = stats.num_edges / guides
    per_guide_stes = stats.num_stes / guides

    counts = [1, 10, 100, 300, 1000, 4096]
    infant2_seconds = []
    cas_offinder_seconds = []
    for count in counts:
        profile = WorkloadProfile(
            genome_length=GENOME_LENGTH,
            num_guides=count,
            site_length=23,
            total_stes=int(per_guide_stes * count),
            total_transitions=int(per_guide_edges * count),
            expected_active=per_guide_active * count,
            report_traffic=ReportTraffic(0, 0),
        )
        infant2_seconds.append(round(infant2_time(profile, GpuNfaSpec()).total_seconds))
        cas_offinder_seconds.append(
            round(cas_offinder_time(profile, CasOffinderSpec()).total_seconds)
        )
    series = render_series(
        "guides",
        counts,
        {"infant2": infant2_seconds, "cas-offinder": cas_offinder_seconds},
        title="F5b: iNFAnt2 vs Cas-OFFinder crossover (modeled, 3 mismatches)",
    )
    save_experiment("f5_crossover", series)

    # Wins small, loses big: the "not consistently better" shape.
    assert infant2_seconds[0] < cas_offinder_seconds[0]
    assert infant2_seconds[-1] > cas_offinder_seconds[-1]

    engine = Infant2Engine()
    small_compiled = compile_library(small_workload.library, small_workload.budget)
    codes = small_workload.genome.codes[:10_000]
    _, counters = benchmark.pedantic(
        engine.simulate_with_counters, args=(codes, small_compiled), rounds=1, iterations=1
    )
    per_symbol = counters["transitions_examined"] / 10_000
    assert per_symbol > 1.0
