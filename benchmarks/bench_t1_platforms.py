"""T1 — Platform and tool configuration table.

Regenerates the evaluation's setup table: every modeled device with its
class, the key rate/capacity parameters, and which constants are
datasheet values versus calibrated effective rates. The benchmark times
guide-library compilation — the setup step every platform shares.
"""

from repro import SearchBudget
from repro.analysis.tables import render_table
from repro.core.compiler import compile_library
from repro.platforms.spec import (
    ApSpec,
    CasOffinderSpec,
    CasotSpec,
    CpuSpec,
    FpgaSpec,
    GpuNfaSpec,
)

from _harness import save_experiment


def _platform_rows():
    ap = ApSpec()
    fpga = FpgaSpec()
    cpu = CpuSpec()
    gpu = GpuNfaSpec()
    off = CasOffinderSpec()
    casot = CasotSpec()
    return [
        ["AP", ap.name, "spatial", f"{ap.clock_hz/1e6:.0f} MHz, 1 sym/cyc", f"{ap.capacity_stes:,} STEs/pass"],
        ["FPGA", fpga.name, "spatial", f"{fpga.clock_hz/1e6:.0f} MHz, 1 sym/cyc", f"{fpga.luts:,} LUTs"],
        ["HyperScan", cpu.name, "CPU (1 thread)", f"{cpu.state_update_rate:.3g} upd/s", "n/a"],
        ["iNFAnt2", gpu.name, "GPU NFA", f"{1/gpu.sync_seconds_per_symbol:.3g} sym/s sync cap", f"{gpu.table_capacity_transitions:,} resident transitions"],
        ["Cas-OFFinder", off.name, "GPU brute force", f"{1/off.position_seconds:.3g} pos/s stream", "n/a"],
        ["CasOT", casot.name, "CPU seed+extend", f"{1/casot.stream_seconds_per_symbol:.3g} sym/s stream", "n/a"],
    ]


def test_t1_platform_table(benchmark, default_workload):
    table = render_table(
        ["tool", "device model", "class", "rate", "capacity"],
        _platform_rows(),
        title="T1: evaluated platforms and tools",
    )
    save_experiment("t1_platforms", table)

    library = default_workload.library
    compiled = benchmark(compile_library, library, SearchBudget(mismatches=3))
    assert compiled.num_stes > 0
