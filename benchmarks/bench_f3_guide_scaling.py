"""F3 — Runtime versus guide-library size (capacity-induced passes).

Spatial platforms run every guide automaton in parallel, so runtime is
flat until the library outgrows one device configuration and pass count
quantises upward; von Neumann engines scale with total activity, and
the baselines scale with per-guide comparison work. Large libraries are
modeled analytically from the exact per-guide STE cost (compiling 4096
guides is unnecessary: networks are disjoint unions, so totals are
per-guide × count — asserted here against a compiled sample).
"""

import pytest

from repro import SearchBudget
from repro.analysis.tables import render_series
from repro.core.compiler import compile_library
from repro.platforms.reporting import ReportTraffic
from repro.platforms.resources import estimate_stes, expected_activity
from repro.platforms.spec import ApSpec, CasOffinderSpec, CasotSpec, CpuSpec, FpgaSpec, GpuNfaSpec
from repro.platforms.timing import (
    WorkloadProfile,
    ap_time,
    cas_offinder_time,
    casot_time,
    expected_casot_candidates,
    fpga_time,
    hyperscan_time,
    infant2_time,
)

from _harness import save_experiment

GUIDE_COUNTS = [1, 10, 100, 1000, 4096]
GENOME_LENGTH = 3_100_000_000
BUDGET = SearchBudget(mismatches=3)


@pytest.fixture(scope="module")
def per_guide(default_workload):
    """Exact per-guide STE/edge/activity figures from a compiled sample."""
    compiled = compile_library(default_workload.library, BUDGET)
    stats = compiled.stats()
    guides = len(default_workload.library)
    return {
        "stes": stats.num_stes / guides,
        "edges": stats.num_edges / guides,
        "activity": expected_activity(compiled.homogeneous) / guides,
    }


def _profile(num_guides, per_guide):
    return WorkloadProfile(
        genome_length=GENOME_LENGTH,
        num_guides=num_guides,
        site_length=23,
        total_stes=int(per_guide["stes"] * num_guides),
        total_transitions=int(per_guide["edges"] * num_guides),
        expected_active=per_guide["activity"] * num_guides,
        report_traffic=ReportTraffic(0, 0),
        seed_candidates=expected_casot_candidates(GENOME_LENGTH, num_guides, 20, 3),
    )


def test_f3_guide_scaling(benchmark, per_guide):
    columns = {
        "hyperscan": [],
        "infant2": [],
        "fpga": [],
        "ap": [],
        "cas-offinder": [],
        "casot": [],
        "AP passes": [],
        "FPGA passes": [],
    }
    for count in GUIDE_COUNTS:
        profile = _profile(count, per_guide)
        ap = ap_time(profile, ApSpec())
        fpga = fpga_time(profile, FpgaSpec())
        columns["hyperscan"].append(round(hyperscan_time(profile, CpuSpec()).total_seconds))
        columns["infant2"].append(round(infant2_time(profile, GpuNfaSpec()).total_seconds))
        columns["fpga"].append(round(fpga.total_seconds))
        columns["ap"].append(round(ap.total_seconds))
        columns["cas-offinder"].append(
            round(cas_offinder_time(profile, CasOffinderSpec()).total_seconds)
        )
        columns["casot"].append(round(casot_time(profile, CasotSpec()).total_seconds))
        columns["AP passes"].append(ap.passes)
        columns["FPGA passes"].append(fpga.passes)
    series = render_series(
        "guides",
        GUIDE_COUNTS,
        columns,
        title="F3: modeled seconds vs guide count (hg-scale, 3 mismatches)",
    )
    save_experiment("f3_guide_scaling", series)

    # Spatial flat until capacity, then pass-quantised.
    assert columns["ap"][0] == columns["ap"][1] == columns["ap"][2]
    assert columns["AP passes"][-1] >= 2
    assert columns["FPGA passes"][-1] > columns["FPGA passes"][0]
    # Von Neumann engines scale ~linearly at high guide counts.
    assert columns["hyperscan"][3] > 50 * columns["hyperscan"][0]
    # iNFAnt2 loses to Cas-OFFinder at scale once tables spill — the
    # abstract's "not consistently better" observation.
    assert columns["infant2"][-1] > columns["cas-offinder"][-1]

    sample = _sample_library(100)
    compiled = benchmark.pedantic(
        compile_library, args=(sample, BUDGET), rounds=1, iterations=1
    )
    assert len(compiled) == 100


def _sample_library(count):
    from repro.genome.synthetic import random_genome
    from repro.grna.library import sample_guides_from_genome

    genome = random_genome(2_000_000, seed=99)
    return sample_guides_from_genome(genome, count, seed=100)
