"""F13 — Banded bit-parallel kernel versus the matcher on bulged budgets.

PR 6's F12 measured the mismatch-only Shift-And kernel; bulged budgets
still routed to the matcher's banded DP, so exactly the budget shapes
the paper showcases got none of the speedup. This table measures the
diagonal-band bit-parallel engine against the matcher across bulged
budget shapes (RNA-only, DNA-only, mixed), through the same
``StreamingSearch`` front end — identical chunking, identical dedupe —
so the ratio isolates the kernel.

The genome is smaller than F12's (the matcher's bulged DP runs a
boolean-array band per candidate and is ~50x slower than its LUT scan,
so Mbp-scale matcher baselines are minutes per cell), but both engines
see the same input and the ratio is what the acceptance pins.

Acceptance (ISSUE 7): >= 5x over the matcher on the 20-guide panel at
mismatches=2, rna_bulges=1, dna_bulges=1. Both kernels' hit lists are
asserted bit-identical before any timing is trusted.
"""

import time

from repro import SearchBudget, StreamingSearch, random_genome, sample_guides_from_genome
from repro.analysis.tables import render_table

from _harness import save_experiment

GENOME_LENGTH = 200_000
PANEL_SIZES = (1, 5, 20)
#: (mismatches, rna_bulges, dna_bulges) budget shapes.
BUDGET_SHAPES = ((1, 1, 0), (1, 0, 1), (2, 1, 1))
#: Bigger blocks than F12: the banded kernel's per-block pass is a
#: fixed number of vector ops per pattern position, so larger blocks
#: amortise it further (and real scans stream Mbp chunks anyway).
CHUNK = 1 << 17

#: The ISSUE acceptance cell: 20 guides, mm=2, one bulge each way.
ACCEPTANCE_PANEL = 20
ACCEPTANCE_SHAPE = (2, 1, 1)
ACCEPTANCE_FLOOR = 5.0


def _best_seconds(search, genome, repeats):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        search.search(genome)
        best = min(best, time.perf_counter() - started)
    return best


def test_f13_bulge_kernel_throughput(benchmark):
    genome = random_genome(GENOME_LENGTH, seed=1302, name="chrF13")
    donor = random_genome(50_000, seed=1303, name="chrDonor")
    rows = []
    acceptance_speedup = None
    for panel_size in PANEL_SIZES:
        guides = sample_guides_from_genome(donor, panel_size, seed=1304 + panel_size)
        for shape in BUDGET_SHAPES:
            mismatches, rna, dna = shape
            budget = SearchBudget(
                mismatches=mismatches, rna_bulges=rna, dna_bulges=dna
            )
            banded = StreamingSearch(
                guides, budget, chunk_length=CHUNK, kernel="bitparallel"
            )
            lut = StreamingSearch(
                guides, budget, chunk_length=CHUNK, kernel="matcher"
            )
            # Differential gate before timing: a fast wrong kernel is
            # not a result.
            assert banded.search(genome) == lut.search(genome)
            repeats = 2
            banded_seconds = _best_seconds(banded, genome, repeats)
            lut_seconds = _best_seconds(lut, genome, repeats)
            speedup = lut_seconds / banded_seconds
            if panel_size == ACCEPTANCE_PANEL and shape == ACCEPTANCE_SHAPE:
                acceptance_speedup = speedup
            rows.append(
                [
                    str(panel_size),
                    f"{mismatches}/{rna}/{dna}",
                    f"{GENOME_LENGTH / lut_seconds:,.0f}",
                    f"{GENOME_LENGTH / banded_seconds:,.0f}",
                    f"{speedup:.1f}x",
                ]
            )
    table = render_table(
        ["guides", "mm/rna/dna", "matcher sym/s", "bitparallel sym/s", "speedup"],
        rows,
        title=(
            f"F13: streaming throughput by kernel on bulged budgets "
            f"({GENOME_LENGTH:,} bp, chunk {CHUNK})"
        ),
    )
    save_experiment("f13_bulge_kernel_throughput", table)

    assert acceptance_speedup is not None
    assert acceptance_speedup >= ACCEPTANCE_FLOOR, (
        f"banded kernel is only {acceptance_speedup:.1f}x the matcher on the "
        f"{ACCEPTANCE_PANEL}-guide mm/rna/dna={ACCEPTANCE_SHAPE} panel; "
        f"the F13 acceptance floor is {ACCEPTANCE_FLOOR}x"
    )

    # A measured number for the benchmark log: the acceptance cell
    # through the banded kernel.
    mismatches, rna, dna = ACCEPTANCE_SHAPE
    budget = SearchBudget(mismatches=mismatches, rna_bulges=rna, dna_bulges=dna)
    guides = sample_guides_from_genome(donor, ACCEPTANCE_PANEL, seed=1324)
    search = StreamingSearch(
        guides, budget, chunk_length=CHUNK, kernel="bitparallel"
    )
    hits = benchmark.pedantic(search.search, args=(genome,), rounds=2, iterations=1)
    assert hits == StreamingSearch(
        guides, budget, chunk_length=CHUNK, kernel="matcher"
    ).search(genome)
