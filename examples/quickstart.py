"""Quickstart: find off-target sites for a guide batch in one page.

Builds a deterministic synthetic reference, samples guides from it (so
each guide has a genuine on-target site), compiles them into automata
and searches with the default engine.

Run:  python examples/quickstart.py
"""

import repro


def main() -> None:
    # A 300 kbp synthetic chromosome with human-like GC content.
    genome = repro.random_genome(300_000, seed=42, gc_content=0.41, name="chrQ")

    # Four SpCas9 guides cut straight out of the reference.
    guides = repro.sample_guides_from_genome(genome, 4, seed=43)
    for guide in guides:
        print(f"{guide.name}: {guide.protospacer} + {guide.pam.name}")

    # Allow up to 3 mismatches (no bulges) and search both strands.
    search = repro.OffTargetSearch(guides, repro.SearchBudget(mismatches=3))
    report = search.run(genome)

    print()
    print(report.summary())
    print()
    print("sites (BED):")
    for hit in report.hits:
        print(f"  {hit.to_bed_line()}")

    # Show the worst off-target alignment for the first guide.
    guide = guides[0]
    off_targets = [h for h in report.hits_for(guide.name) if h.edits > 0]
    if off_targets:
        worst = max(off_targets, key=lambda h: h.edits)
        print()
        print(f"closest off-target of {guide.name} ({worst.mismatches} mismatches):")
        print(repro.render_alignment(guide, worst))


if __name__ == "__main__":
    main()
