"""Specificity screen: published-style guides against a repeat-rich genome.

The scenario the paper's introduction motivates: before committing to a
guide, enumerate every near-match in the reference and tally them by
edit distance — repeats are what make some guides unusable. This
example builds a chromosome with diverged repeat families and assembly
gaps, plants known decoy sites for one guide, and screens a panel of
well-known SpCas9 guide sequences (EMX1, VEGFA site 2, FANCF) under
both the strict NGG and the relaxed NRG PAM.

Run:  python examples/genome_screen.py
"""

from collections import Counter

import repro
from repro.genome.synthetic import SyntheticGenomeBuilder, plant_sites

#: Well-characterised SpCas9 protospacers from the off-target literature.
PANEL = [
    repro.Guide("EMX1", "GAGTCCGAGCAGAAGAAGAA"),
    repro.Guide("VEGFA_s2", "GACCCCCTCCACCCCGCCTC"),
    repro.Guide("FANCF", "GGAATCCCTTCTGCAGCACC"),
]


def build_reference() -> repro.Sequence:
    builder = SyntheticGenomeBuilder(seed=2018, gc_content=0.45)
    builder.add_background(400_000)
    builder.add_repeats(count=25, unit_length=400, copies=8, divergence=0.03)
    builder.add_gap(10_000)  # an assembly gap the search must skip
    builder.add_background(400_000)
    return builder.build("chrScreen")


def screen(genome: repro.Sequence, pam: str) -> None:
    guides = [guide.with_pam(pam) for guide in PANEL]
    search = repro.OffTargetSearch(guides, repro.SearchBudget(mismatches=4))
    report = search.run(genome)
    print(f"\n=== PAM {pam}: {report.num_hits} candidate sites ===")
    for guide in guides:
        tally = Counter(hit.mismatches for hit in report.hits_for(guide.name))
        row = "  ".join(f"{k}mm:{tally.get(k, 0)}" for k in range(5))
        total = sum(tally.values())
        verdict = "SPECIFIC" if tally.get(0, 0) + tally.get(1, 0) <= 1 else "risky"
        print(f"  {guide.name:10s} {row}   total={total:<4d} {verdict}")


def main() -> None:
    genome = build_reference()
    print(f"reference: {len(genome):,} bp, GC={genome.gc_fraction():.2f}, "
          f"gap bases={genome.count_n():,}")

    # Plant three 2-mismatch decoys of EMX1 so the screen has known hits.
    genome, planted = plant_sites(genome, PANEL[:1], per_guide=3, mismatches=2, seed=7)
    print(f"planted {len(planted)} EMX1 decoys at "
          + ", ".join(str(site.position) for site in planted))

    screen(genome, "NGG")
    screen(genome, "NRG")  # relaxed PAM roughly doubles the search space

    # Confirm the decoys were recovered.
    search = repro.OffTargetSearch(PANEL[:1], repro.SearchBudget(mismatches=2))
    found = {hit.start for hit in search.run(genome).hits}
    missing = [site for site in planted if site.position not in found]
    print(f"\ndecoys recovered: {len(planted) - len(missing)}/{len(planted)}")
    assert not missing, "planted decoys must be found"


if __name__ == "__main__":
    main()
