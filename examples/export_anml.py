"""Export compiled guide automata as ANML — the AP toolchain's format.

The Automata Processor flow consumes automata networks as ANML XML;
this example compiles a guide pair, writes the network to disk, reads
it back, and verifies the round-tripped machine reports the same match
cycles on a test stream. It also prints the structural statistics the
capacity models consume, and the same guide compiled as a real 2-symbol
strided automaton (the paper's multi-symbol proposal).

Run:  python examples/export_anml.py
"""

import tempfile
from pathlib import Path

import repro
from repro.automata import ops
from repro.automata.anml import from_anml, to_anml
from repro.automata.striding import build_strided_hamming, strided_state_count
from repro.core.compiler import _segments, compile_library
from repro.core.labels import MatchLabel


def main() -> None:
    guides = repro.GuideLibrary.from_guides(
        [
            repro.Guide("EMX1", "GAGTCCGAGCAGAAGAAGAA"),
            repro.Guide("FANCF", "GGAATCCCTTCTGCAGCACC"),
        ]
    )
    budget = repro.SearchBudget(mismatches=3)
    compiled = compile_library(guides, budget)
    network = compiled.homogeneous

    stats = ops.stats(network)
    print(f"network: {stats.num_stes} STEs, {stats.num_edges} wires, "
          f"{stats.num_reports} reporting STEs, {stats.num_starts} starts, "
          f"max fanout {stats.max_fanout}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "offtarget.anml"
        path.write_text(to_anml(network, network_id="offtarget-batch"))
        print(f"wrote {path.stat().st_size:,} bytes of ANML")

        back = from_anml(path)
        genome = repro.random_genome(20_000, seed=3)
        genome, _ = repro.plant_sites(genome, guides, per_guide=2, mismatches=2, seed=4)
        original_cycles = sorted(c for c, _ in network.run(genome.codes))
        restored_cycles = sorted(c for c, _ in back.run(genome.codes))
        assert original_cycles == restored_cycles and restored_cycles
        print(f"round-trip verified: {len(restored_cycles)} report cycles identical")

    # The same guide as a 2-symbol strided machine (two bases per clock).
    segments = _segments(guides[0], reverse=False)

    def label_factory(mismatches):
        return MatchLabel(guides[0].name, "+", mismatches, 0, 0, 23)

    strided = build_strided_hamming(segments, budget.mismatches, label_factory=label_factory)
    one_stride_states = compiled.guides[0].num_stes // 2  # per strand
    print(f"stride-2 variant: {strided.num_states} states "
          f"(predicted {strided_state_count(segments, budget.mismatches)}), "
          f"vs ~{one_stride_states} 1-stride STEs — half the cycles for "
          f"x{strided.num_states / one_stride_states:.2f} the states")


if __name__ == "__main__":
    main()
