"""Cross-platform comparison: the paper's evaluation in one script.

Compiles a guide library, inspects the automata network (including an
ANML export, the Automata Processor's interchange format), runs the
functional search on every platform model and baseline, and prints the
modeled human-genome-scale times and headline speedups.

Run:  python examples/platform_comparison.py
"""

import repro
from repro.analysis.speedup import speedup_matrix, speedup_vs
from repro.analysis.tables import render_table
from repro.analysis.workloads import StandardWorkload, evaluate_platforms
from repro.automata.anml import to_anml
from repro.core.compiler import compile_guide


def inspect_automaton() -> None:
    guide = repro.Guide("EMX1", "GAGTCCGAGCAGAAGAAGAA")
    compiled = compile_guide(guide, repro.SearchBudget(mismatches=3))
    print(f"guide {guide.name}: {compiled.combined.num_states} NFA states → "
          f"{compiled.num_stes} STEs (both strands), "
          f"{compiled.dfa.num_states} DFA states after minimisation")
    anml = to_anml(compiled.homogeneous, network_id=guide.name)
    print(f"ANML export: {len(anml.splitlines())} lines "
          f"(first STE: {anml.splitlines()[2].strip()})")


def main() -> None:
    inspect_automaton()

    workload = StandardWorkload(
        name="example",
        functional_genome_length=1_000_000,
        num_guides=10,
        budget=repro.SearchBudget(mismatches=3),
    )
    print(f"\nworkload: {workload.functional_genome_length:,} bp functional, "
          f"{workload.modeled_genome_length / 1e9:.1f} Gbp modeled, "
          f"{workload.num_guides} guides, "
          f"{workload.budget.mismatches} mismatches")

    results = evaluate_platforms(workload)
    rows = [
        [
            record.tool,
            f"{record.modeled_total:,.0f}",
            f"{record.modeled_kernel:,.0f}",
            record.num_hits,
        ]
        for record in results
    ]
    print()
    print(render_table(
        ["tool", "modeled total s", "modeled kernel s", "hits"],
        rows,
        title="Modeled hg-scale runtimes",
    ))

    print()
    matrix = speedup_matrix(results, ["cas-offinder", "casot"])
    rows = [
        [tool, f"{columns['cas-offinder']:.1f}x", f"{columns['casot']:.1f}x"]
        for tool, columns in matrix.items()
    ]
    print(render_table(
        ["tool", "vs Cas-OFFinder", "vs CasOT"], rows, title="Speedups"
    ))

    print()
    print(f"AP vs FPGA (kernel only): "
          f"{speedup_vs(results, 'ap', 'fpga', kernel_only=True):.2f}x "
          f"— the abstract's 1.5x claim")


if __name__ == "__main__":
    main()
