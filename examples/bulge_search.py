"""Bulge-aware search: sites mismatch-only tools cannot see.

Cleavage can survive a single-base bulge between guide and genome, but
mismatch-only searches (Cas-OFFinder v2's model) are blind to such
sites. This example plants RNA- and DNA-bulged sites, shows that the
mismatch-only budget misses them, and that the bulge-aware automata
(and the CasOT baseline) recover them — then renders the alignments.

Run:  python examples/bulge_search.py
"""

import repro
from repro.genome.synthetic import plant_sites

GUIDE = repro.Guide("HBB", "CTTGCCCCACAGGGCAGTAA")


def main() -> None:
    genome = repro.random_genome(200_000, seed=99, name="chrB")

    # Plant two RNA-bulged (site one base shorter) and two DNA-bulged
    # (one base longer) near-targets.
    genome, rna_planted = plant_sites(genome, [GUIDE], per_guide=2, rna_bulges=1, seed=1)
    genome, dna_planted = plant_sites(genome, [GUIDE], per_guide=2, dna_bulges=1, seed=2)
    planted_positions = {site.position for site in rna_planted + dna_planted}
    print(f"planted bulged sites at: {sorted(planted_positions)}")

    # 1) Mismatch-only search misses every bulged site.
    mismatch_only = repro.OffTargetSearch(
        [GUIDE], repro.SearchBudget(mismatches=3)
    ).run(genome)
    found_mismatch_only = {hit.start for hit in mismatch_only.hits}
    missed = planted_positions - found_mismatch_only
    print(f"mismatch-only search: {mismatch_only.num_hits} hits, "
          f"misses {len(missed)}/{len(planted_positions)} bulged sites")

    # 2) Bulge-aware search recovers them.
    bulged = repro.OffTargetSearch(
        [GUIDE], repro.SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=1)
    ).run(genome)
    found_bulged = {hit.start for hit in bulged.hits}
    print(f"bulge-aware search:   {bulged.num_hits} hits, "
          f"misses {len(planted_positions - found_bulged)}/{len(planted_positions)}")
    assert planted_positions <= found_bulged

    # 3) CasOT (the indel-capable baseline) agrees with the automata.
    casot = repro.OffTargetSearch(
        [GUIDE], repro.SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=1)
    ).run(genome, engine="casot")
    same = {h.key for h in casot.hits} == {h.key for h in bulged.hits}
    print(f"CasOT agreement: {'identical hit set' if same else 'MISMATCH'}")
    assert same

    # 4) Show one alignment of each bulge kind.
    print()
    for kind, wanted in (("RNA bulge", "rna_bulges"), ("DNA bulge", "dna_bulges")):
        hit = next(
            h
            for h in bulged.hits
            if getattr(h, wanted) == 1 and h.rna_bulges + h.dna_bulges == 1
        )
        print(f"{kind} site at {hit.start} ({hit.strand} strand):")
        print(repro.render_alignment(GUIDE, hit))
        print()


if __name__ == "__main__":
    main()
